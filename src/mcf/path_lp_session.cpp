#include "mcf/path_lp_session.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/simple_paths.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace netrec::mcf {

namespace {
constexpr double kEps = 1e-9;

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}
}  // namespace

PathLpSession::PathLpSession(const graph::Graph& g, PathLpMode mode,
                             PathLpOptions options)
    : g_(g), mode_(mode), opt_(options) {
  lp_options_.warm_append = true;  // appended rows degrade, not cold-start
  dirty_mark_.assign(g_.num_edges(), 0);
  columns_of_edge_.resize(g_.num_edges());
  capacity_row_.assign(g_.num_edges(), -1);
}

void PathLpSession::set_min_cost_objective(graph::EdgeWeight edge_cost) {
  if (mode_ != PathLpMode::kMinCost) {
    throw std::logic_error("PathLpSession: objective requires kMinCost mode");
  }
  objective_edge_cost_ = std::move(edge_cost);
}

PathLpResult PathLpSession::solve(const graph::GraphView& view,
                                  const std::vector<DemandSpec>& demands) {
  if (mode_ == PathLpMode::kMaxSplit) {
    throw std::logic_error("PathLpSession: use solve_split in kMaxSplit mode");
  }
  if (mode_ == PathLpMode::kMinCost && !objective_edge_cost_) {
    throw std::logic_error("PathLpSession: kMinCost objective not set");
  }
  stop_when_fully_routed_ = false;  // full convergence for plain solves
  return run_master(view, demands);
}

PathLpResult PathLpSession::solve_routability(
    const graph::GraphView& view, const std::vector<DemandSpec>& demands) {
  if (mode_ != PathLpMode::kMaxRouted) {
    throw std::logic_error(
        "PathLpSession: solve_routability requires kMaxRouted");
  }
  stop_when_fully_routed_ = true;
  PathLpResult result = run_master(view, demands);
  stop_when_fully_routed_ = false;
  return result;
}

PathLpResult PathLpSession::solve_split(const graph::GraphView& view,
                                        const std::vector<DemandSpec>& demands,
                                        int split_index, graph::NodeId via) {
  if (mode_ != PathLpMode::kMaxSplit) {
    throw std::logic_error("PathLpSession: solve_split requires kMaxSplit");
  }
  if (split_index < 0 ||
      split_index >= static_cast<int>(demands.size())) {
    throw std::invalid_argument("PathLpSession: split index out of range");
  }
  pending_split_index_ = split_index;
  pending_split_via_ = via;
  return run_master(view, demands);
}

// --- mutation fan-out --------------------------------------------------------

void PathLpSession::on_edge_invalidated(graph::EdgeId e) { mark_dirty(e); }

void PathLpSession::on_node_invalidated(graph::NodeId n) {
  for (graph::EdgeId e : g_.incident_edges(n)) mark_dirty(e);
}

void PathLpSession::on_epoch_bumped() {
  ++stats_.resets;
  reset();
}

void PathLpSession::mark_dirty(graph::EdgeId e) {
  if (static_cast<std::size_t>(e) >= dirty_mark_.size()) {
    // The graph grew; size the per-edge maps up (callers normally follow
    // topology edits with bump_epoch, which resets everything anyway).
    dirty_mark_.resize(g_.num_edges(), 0);
    columns_of_edge_.resize(g_.num_edges());
    capacity_row_.resize(g_.num_edges(), -1);
  }
  if (dirty_mark_[static_cast<std::size_t>(e)]) return;
  dirty_mark_[static_cast<std::size_t>(e)] = 1;
  dirty_.push_back(e);
}

void PathLpSession::reset() {
  initialized_ = false;
  model_ = lp::Model{};
  basis_ = lp::Basis{};
  demand_rows_.clear();
  row_of_uid_.clear();
  row_of_spec_.clear();
  pool_.clear();
  pool_by_pair_.clear();
  columns_.clear();
  columns_by_key_.clear();
  columns_of_edge_.assign(g_.num_edges(), {});
  columns_of_row_.clear();
  half_columns_.clear();
  capacity_row_.assign(g_.num_edges(), -1);
  half_row_[0] = half_row_[1] = -1;
  dx_var_ = -1;
  split_row_index_ = -1;
  half_via_ = graph::kInvalidNode;
  dirty_.clear();
  dirty_mark_.assign(g_.num_edges(), 0);
}

// --- element / path validity -------------------------------------------------

bool PathLpSession::edge_usable(const graph::GraphView& view,
                                graph::EdgeId e) const {
  // Exactly PathLp's borrowed-view test: cached views keep drained edges as
  // arcs, so membership alone is not usability.
  return view.edge_in_view(e) && view.edge_capacity(e) > kEps;
}

bool PathLpSession::path_alive(const graph::GraphView& view,
                               const graph::Path& p) const {
  for (graph::EdgeId e : p.edges) {
    if (!edge_usable(view, e)) return false;
  }
  return true;
}

// --- incremental model maintenance ------------------------------------------

void PathLpSession::process_dirty(const graph::GraphView& view) {
  for (graph::EdgeId e : dirty_) {
    dirty_mark_[static_cast<std::size_t>(e)] = 0;
    const int row = capacity_row_[static_cast<std::size_t>(e)];
    if (row >= 0) {
      model_.constraint(row).rhs =
          view.edge_in_view(e) ? view.edge_capacity(e) : 0.0;
    } else if (eager_ && edge_usable(view, e)) {
      // Eagerly managed master: a repaired edge just entered the usable
      // set, so its capacity row appears now (back-filling any columns).
      add_capacity_row(view, e);
    }
    for (int c : columns_of_edge_[static_cast<std::size_t>(e)]) {
      Column& col = columns_[static_cast<std::size_t>(c)];
      PoolPath& pp = pool_[static_cast<std::size_t>(col.pool_index)];
      if (!pp.dead && !path_alive(view, pp.path)) pp.dead = true;
      if (pp.dead) {
        if (col.active) deactivate_column(c);
        continue;
      }
      if (mode_ == PathLpMode::kMinCost) {
        // Repair-state-dependent objective: re-price the surviving column.
        model_.variable(col.var).cost = column_cost(pp.path);
      }
    }
  }
  dirty_.clear();
}

void PathLpSession::sync_demands(const std::vector<DemandSpec>& specs) {
  row_of_spec_.assign(specs.size(), -1);
  for (DemandRow& dr : demand_rows_) dr.spec_index = -1;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DemandSpec& spec = specs[i];
    auto it = row_of_uid_.find(spec.uid);
    int idx;
    if (it == row_of_uid_.end()) {
      idx = static_cast<int>(demand_rows_.size());
      DemandRow dr;
      dr.uid = spec.uid;
      dr.demand = spec.demand;
      if (mode_ == PathLpMode::kMaxRouted) {
        dr.row = model_.add_constraint(lp::Sense::kLessEqual,
                                       spec.demand.amount);
      } else {
        dr.row = model_.add_constraint(lp::Sense::kEqual, spec.demand.amount);
        // Shortfall keeps the master feasible with an empty column pool.
        dr.shortfall_var =
            model_.add_variable(0.0, spec.demand.amount, opt_.big_m);
        model_.set_coefficient(dr.row, dr.shortfall_var, 1.0);
      }
      demand_rows_.push_back(dr);
      columns_of_row_.emplace_back();
      row_of_uid_.emplace(spec.uid, idx);
    } else {
      idx = it->second;
      DemandRow& dr = demand_rows_[static_cast<std::size_t>(idx)];
      dr.retired = false;
      dr.demand.amount = spec.demand.amount;
      model_.constraint(dr.row).rhs = spec.demand.amount;
      if (dr.shortfall_var >= 0) {
        model_.variable(dr.shortfall_var).upper = spec.demand.amount;
      }
    }
    demand_rows_[static_cast<std::size_t>(idx)].spec_index =
        static_cast<int>(i);
    row_of_spec_[i] = idx;
  }
  // A uid absent from this call keeps its row, zeroed: rhs 0 forces its
  // columns out of the flow, the shortfall bound closes, and the columns
  // are parked so the simplex skips them outright.
  for (std::size_t i = 0; i < demand_rows_.size(); ++i) {
    DemandRow& dr = demand_rows_[i];
    if (dr.spec_index >= 0 || dr.retired) continue;
    dr.retired = true;
    model_.constraint(dr.row).rhs = 0.0;
    if (dr.shortfall_var >= 0) model_.variable(dr.shortfall_var).upper = 0.0;
    for (int c : columns_of_row_[i]) deactivate_column(c);
  }
}

void PathLpSession::wire_split(const graph::GraphView& view, int split_index,
                               graph::NodeId via) {
  if (half_row_[0] < 0) {
    half_row_[0] = model_.add_constraint(lp::Sense::kEqual, 0.0);
    half_row_[1] = model_.add_constraint(lp::Sense::kEqual, 0.0);
  }
  const int new_split_row = row_of_spec_[static_cast<std::size_t>(split_index)];
  const bool same_probe =
      new_split_row == split_row_index_ && via == half_via_;
  split_row_index_ = new_split_row;
  half_via_ = via;
  const Demand& d =
      demand_rows_[static_cast<std::size_t>(split_row_index_)].demand;

  if (same_probe && dx_var_ >= 0) {
    model_.variable(dx_var_).upper = d.amount;
  } else {
    // A probe change retires the old dx (fixed to 0) and mints a fresh
    // one.  Never rewrite an existing variable's column: a basis slot
    // covering the old split row through dx would lose its only nonzero
    // in that row and the decoded warm basis would go singular.
    if (dx_var_ >= 0) model_.variable(dx_var_).upper = 0.0;
    dx_var_ = model_.add_variable(0.0, d.amount, -1.0);  // min -dx == max dx
    model_.set_coefficient(
        demand_rows_[static_cast<std::size_t>(split_row_index_)].row, dx_var_,
        1.0);
    model_.set_coefficient(half_row_[0], dx_var_, -1.0);
    model_.set_coefficient(half_row_[1], dx_var_, -1.0);
    // Park the previous probe's half columns; matching ones are revived by
    // the install pass below (same via => same (endpoint, path) keys).
    for (int c : half_columns_) deactivate_column(c);
  }

  seed_binding(view, kHalfA, d.source, via, d.amount);
  seed_binding(view, kHalfB, via, d.target, d.amount);
}

void PathLpSession::add_capacity_row(const graph::GraphView& view,
                                     graph::EdgeId e) {
  const int row =
      model_.add_constraint(lp::Sense::kLessEqual, view.edge_capacity(e));
  capacity_row_[static_cast<std::size_t>(e)] = row;
  for (int c : columns_of_edge_[static_cast<std::size_t>(e)]) {
    model_.set_coefficient(row, columns_[static_cast<std::size_t>(c)].var,
                           1.0);
  }
}

double PathLpSession::column_cost(const graph::Path& path) const {
  switch (mode_) {
    case PathLpMode::kMaxRouted:
      return -1.0;
    case PathLpMode::kMaxSplit:
      return 0.0;
    case PathLpMode::kMinCost: {
      double c = 0.0;
      for (graph::EdgeId e : path.edges) c += objective_edge_cost_(e);
      return c;
    }
  }
  return 0.0;
}

int PathLpSession::model_row(int binding) const {
  if (binding >= 0) {
    return demand_rows_[static_cast<std::size_t>(binding)].row;
  }
  return binding == kHalfA ? half_row_[0] : half_row_[1];
}

std::uint64_t PathLpSession::pair_key(graph::NodeId s,
                                      graph::NodeId t) const {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(t));
}

std::uint64_t PathLpSession::column_key(int binding,
                                        const graph::Path& path) const {
  std::uint64_t h =
      hash_mix(0x243f6a8885a308d3ULL,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(binding)));
  for (graph::EdgeId e : path.edges) {
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e)));
  }
  return h;
}

int PathLpSession::pool_add(graph::NodeId s, graph::NodeId t,
                            graph::Path path) {
  std::vector<int>& list = pool_by_pair_[pair_key(s, t)];
  for (int pi : list) {
    if (pool_[static_cast<std::size_t>(pi)].path.edges == path.edges) {
      return pi;  // same arc set for the same pair: already pooled
    }
  }
  const int pi = static_cast<int>(pool_.size());
  pool_.push_back(PoolPath{std::move(path), false});
  list.push_back(pi);
  return pi;
}

int PathLpSession::install_column(const graph::GraphView& view, int binding,
                                  int pool_index) {
  const graph::Path& path =
      pool_[static_cast<std::size_t>(pool_index)].path;
  const std::uint64_t key = column_key(binding, path);
  std::vector<int>& bucket = columns_by_key_[key];
  for (int c : bucket) {
    Column& col = columns_[static_cast<std::size_t>(c)];
    if (col.binding != binding) continue;
    if (pool_[static_cast<std::size_t>(col.pool_index)].path.edges !=
        path.edges) {
      continue;  // hash collision
    }
    if (col.active) {
      ++stats_.duplicates_skipped;
      return -1;
    }
    if (!path_alive(view, path)) return -1;  // parked and dead: stays out
    col.active = true;
    model_.variable(col.var).upper = lp::kInfinity;
    return c;
  }
  const int index = static_cast<int>(columns_.size());
  Column col;
  col.binding = binding;
  col.pool_index = pool_index;
  col.active = true;
  col.var = model_.add_variable(0.0, lp::kInfinity, column_cost(path));
  model_.set_coefficient(model_row(binding), col.var, 1.0);
  for (graph::EdgeId e : path.edges) {
    const int row = capacity_row_[static_cast<std::size_t>(e)];
    if (row >= 0) model_.set_coefficient(row, col.var, 1.0);
    columns_of_edge_[static_cast<std::size_t>(e)].push_back(index);
  }
  if (binding >= 0) {
    columns_of_row_[static_cast<std::size_t>(binding)].push_back(index);
  } else {
    half_columns_.push_back(index);
  }
  columns_.push_back(std::move(col));
  bucket.push_back(index);
  ++stats_.columns_installed;
  return index;
}

void PathLpSession::deactivate_column(int column_index) {
  Column& col = columns_[static_cast<std::size_t>(column_index)];
  if (!col.active) return;
  col.active = false;
  model_.variable(col.var).upper = 0.0;  // fixed out of the master
  ++stats_.columns_deactivated;
}

void PathLpSession::seed_binding(const graph::GraphView& view, int binding,
                                 graph::NodeId s, graph::NodeId t,
                                 double amount) {
  if (s == t || amount <= kEps) return;
  const std::uint64_t key = pair_key(s, t);
  bool pooled = false;
  {
    auto it = pool_by_pair_.find(key);
    pooled = it != pool_by_pair_.end() && !it->second.empty();
  }
  if (!pooled && opt_.seed_paths_per_demand > 0) {
    ++stats_.seed_runs;
    // Target-stopped variant: same seed paths, cheaper settle order.
    auto seeds = graph::successive_shortest_paths_to(
        view, s, t, amount, opt_.seed_paths_per_demand);
    for (auto& p : seeds.paths) pool_add(s, t, std::move(p));
  }
  auto it = pool_by_pair_.find(key);
  if (it == pool_by_pair_.end()) return;
  // Index loop: install_column may grow other containers but not this list.
  for (std::size_t k = 0; k < it->second.size(); ++k) {
    const int pi = it->second[k];
    PoolPath& pp = pool_[static_cast<std::size_t>(pi)];
    if (pp.dead) continue;
    if (!path_alive(view, pp.path)) {
      pp.dead = true;
      continue;
    }
    if (install_column(view, binding, pi) >= 0 && pooled) {
      ++stats_.columns_reused;
    }
  }
}

void PathLpSession::seed_row(const graph::GraphView& view, int row_index) {
  DemandRow& dr = demand_rows_[static_cast<std::size_t>(row_index)];
  dr.seeded = true;
  seed_binding(view, row_index, dr.demand.source, dr.demand.target,
               dr.demand.amount);
}

// --- the master --------------------------------------------------------------

PathLpResult PathLpSession::run_master(const graph::GraphView& view,
                                       const std::vector<DemandSpec>& specs) {
  ++stats_.solves;
  const bool first = !initialized_;
  if (first) {
    eager_ = g_.num_edges() <= opt_.eager_capacity_threshold;
    initialized_ = true;
    // Mutations observed before the first master existed have nothing to
    // patch; the model below is built from the live view directly.
    for (graph::EdgeId e : dirty_) {
      dirty_mark_[static_cast<std::size_t>(e)] = 0;
    }
    dirty_.clear();
  } else {
    process_dirty(view);
  }

  sync_demands(specs);
  if (mode_ == PathLpMode::kMaxSplit) {
    wire_split(view, pending_split_index_, pending_split_via_);
  }
  if (first && eager_) {
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if (edge_usable(view, id)) add_capacity_row(view, id);
    }
  }
  for (std::size_t i = 0; i < demand_rows_.size(); ++i) {
    const DemandRow& dr = demand_rows_[i];
    if (dr.spec_index >= 0 && !dr.seeded) seed_row(view, static_cast<int>(i));
  }

  // --- column generation (same exact pricing rule as PathLp; the basis
  // and pool carry over between rounds *and* between calls) ---------------
  lp::Solution lp_solution;
  bool converged = false;
  double spec_total = 0.0;  // degenerate (s==t) demands route trivially
  for (const DemandSpec& spec : specs) {
    if (spec.demand.source != spec.demand.target) {
      spec_total += spec.demand.amount;
    }
  }

  for (std::size_t round = 0; round < opt_.max_rounds; ++round) {
    ++stats_.rounds;
    lp_solution = lp::solve(model_, lp_options_, &basis_);
    if (lp_solution.status != lp::SolveStatus::kOptimal) {
      NETREC_LOG(kWarn) << "PathLpSession master returned "
                        << lp::to_string(lp_solution.status);
      break;
    }

    // Lazy capacity rows: activate every violated edge, then re-solve.
    // Unlike the one-shot PathLp there is no cold restart here — the
    // appended rows degrade the warm basis, they do not discard it.
    if (!eager_) {
      std::vector<double> load(g_.num_edges(), 0.0);
      for (const Column& col : columns_) {
        if (!col.active) continue;
        const double x = lp_solution.x[static_cast<std::size_t>(col.var)];
        if (x <= kEps) continue;
        for (graph::EdgeId e :
             pool_[static_cast<std::size_t>(col.pool_index)].path.edges) {
          load[static_cast<std::size_t>(e)] += x;
        }
      }
      bool added_row = false;
      for (std::size_t e = 0; e < g_.num_edges(); ++e) {
        if (capacity_row_[e] >= 0) continue;
        const auto id = static_cast<graph::EdgeId>(e);
        if (load[e] > view.edge_capacity(id) + opt_.tolerance) {
          add_capacity_row(view, id);
          added_row = true;
        }
      }
      if (added_row) continue;
    }

    // Routability early-stop: the load scan above guarantees the master's
    // flow fits every edge, so total routed == demand already answers the
    // probe; pricing could only re-confirm it.
    if (stop_when_fully_routed_ &&
        -lp_solution.objective >= spec_total - 1e-6) {
      break;
    }

    // Pricing: shortest path per demand under reduced-cost edge weights.
    std::vector<double> edge_weight(g_.num_edges(), 0.0);
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if (!edge_usable(view, id)) continue;
      double w = 0.0;
      const int row = capacity_row_[e];
      if (row >= 0) w -= lp_solution.duals[static_cast<std::size_t>(row)];
      if (mode_ == PathLpMode::kMinCost) w += objective_edge_cost_(id);
      edge_weight[e] = std::max(w, 0.0);
    }

    // The jobs are listed in the serial sweep's order (demand rows
    // ascending, then the split half rows).  A binding's threshold and
    // target-stopped Dijkstra read only this round's duals, the view and
    // edge_weight — an install never feeds back into another binding's
    // compute within one round — so the compute stage fans out on the
    // pool and the install stage runs serially in job order, reproducing
    // the serial sweep's pool indices and column order exactly.
    struct PricingJob {
      int binding;
      graph::NodeId s;
      graph::NodeId t;
      double amount;
      std::optional<graph::Path> path;
    };
    std::vector<PricingJob> jobs;
    for (std::size_t i = 0; i < demand_rows_.size(); ++i) {
      const DemandRow& dr = demand_rows_[i];
      if (dr.spec_index < 0) continue;
      jobs.push_back({static_cast<int>(i), dr.demand.source, dr.demand.target,
                      dr.demand.amount, std::nullopt});
    }
    if (mode_ == PathLpMode::kMaxSplit) {
      const Demand& sd =
          demand_rows_[static_cast<std::size_t>(split_row_index_)].demand;
      jobs.push_back({kHalfA, sd.source, half_via_, sd.amount, std::nullopt});
      jobs.push_back({kHalfB, half_via_, sd.target, sd.amount, std::nullopt});
    }
    const auto price_job = [&](std::size_t j) {
      PricingJob& job = jobs[j];
      if (job.s == job.t || job.amount <= kEps) return;
      const double y_h =
          lp_solution.duals[static_cast<std::size_t>(model_row(job.binding))];
      const double threshold =
          (mode_ == PathLpMode::kMaxRouted ? 1.0 + y_h : y_h) -
          opt_.tolerance * 10.0;
      if (threshold <= 0.0) return;  // no path can improve
      auto tree = graph::dijkstra_to(view, job.s, job.t, edge_weight,
                                     view.edge_capacities());
      if (!tree.reached(job.t)) return;
      if (tree.distance[static_cast<std::size_t>(job.t)] < threshold) {
        job.path = std::move(*tree.path_to(g_, job.t));
      }
    };
    if (thread_pool_ != nullptr && thread_pool_->size() > 1 &&
        jobs.size() > 1) {
      thread_pool_->parallel_for(jobs.size(), price_job);
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) price_job(j);
    }
    bool added_column = false;
    for (PricingJob& job : jobs) {
      if (!job.path.has_value()) continue;
      const int pi = pool_add(job.s, job.t, std::move(*job.path));
      if (install_column(view, job.binding, pi) >= 0) added_column = true;
    }
    if (!added_column) {
      converged = true;
      break;
    }
  }

  // --- result extraction (mirrors PathLp) ---------------------------------
  PathLpResult result;
  const int n_user = static_cast<int>(specs.size());
  result.converged =
      converged && lp_solution.status == lp::SolveStatus::kOptimal;
  result.shortfall.assign(static_cast<std::size_t>(n_user), 0.0);
  result.routing.routed.assign(static_cast<std::size_t>(n_user), 0.0);
  if (lp_solution.status != lp::SolveStatus::kOptimal) return result;

  for (int h = 0; h < n_user; ++h) {
    const Demand& d = specs[static_cast<std::size_t>(h)].demand;
    if (d.source == d.target && d.amount > 0.0) {
      result.routing.routed[static_cast<std::size_t>(h)] = d.amount;
      result.routing.total_routed += d.amount;
    }
  }
  for (const Column& col : columns_) {
    if (!col.active) continue;
    const double x = lp_solution.x[static_cast<std::size_t>(col.var)];
    if (x <= opt_.tolerance) continue;
    int demand_index;
    if (col.binding >= 0) {
      const int spec =
          demand_rows_[static_cast<std::size_t>(col.binding)].spec_index;
      if (spec < 0) continue;  // retired rows carry no flow (rhs 0)
      demand_index = spec;
      result.routing.routed[static_cast<std::size_t>(spec)] += x;
      result.routing.total_routed += x;
    } else {
      demand_index = n_user + (col.binding == kHalfA ? 0 : 1);
    }
    PathFlow flow;
    flow.demand_index = demand_index;
    flow.path = pool_[static_cast<std::size_t>(col.pool_index)].path;
    flow.amount = x;
    result.routing.flows.push_back(std::move(flow));
  }
  double total_shortfall = 0.0;
  for (const DemandRow& dr : demand_rows_) {
    if (dr.shortfall_var < 0) continue;
    const double s = lp_solution.x[static_cast<std::size_t>(dr.shortfall_var)];
    if (dr.spec_index >= 0) {
      result.shortfall[static_cast<std::size_t>(dr.spec_index)] = s;
    }
    total_shortfall += s;
  }

  switch (mode_) {
    case PathLpMode::kMaxRouted: {
      result.objective = -lp_solution.objective;
      double covered = 0.0;
      std::vector<Demand> user;
      user.reserve(specs.size());
      for (int h = 0; h < n_user; ++h) {
        const Demand& d = specs[static_cast<std::size_t>(h)].demand;
        user.push_back(d);
        covered += std::min(result.routing.routed[static_cast<std::size_t>(h)],
                            d.amount);
      }
      result.routing.fully_routed = covered >= total_demand(user) - 1e-6;
      break;
    }
    case PathLpMode::kMinCost:
      result.objective =
          lp_solution.objective - opt_.big_m * total_shortfall;
      result.routing.fully_routed = total_shortfall <= 1e-6;
      break;
    case PathLpMode::kMaxSplit:
      result.objective =
          dx_var_ >= 0
              ? lp_solution.x[static_cast<std::size_t>(dx_var_)]
              : 0.0;
      result.routing.fully_routed = total_shortfall <= 1e-6;
      break;
  }
  return result;
}

}  // namespace netrec::mcf
