// ISP split-amount LP (paper Section IV-C, decision 2).
//
// Given the current demand set and a chosen demand h / via-node v_BC,
// computes the largest dx such that replacing dx units of (s_h, t_h) with
// (s_h, v_BC) and (v_BC, t_h) keeps the whole demand routable on the given
// (typically full, residual-capacity) supply graph.
#pragma once

#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/path_lp_session.hpp"
#include "mcf/types.hpp"

namespace netrec::mcf {

/// Same LP on a persistent kMaxSplit session: the columns of the unsplit
/// demands and of earlier (via, half) probes persist across calls, and the
/// master warm-starts from the previous probe's basis — the hottest call in
/// ISP's split phase (one probe per centrality candidate per iteration).
double max_splittable_amount(
    PathLpSession& session, const graph::GraphView& view,
    const std::vector<PathLpSession::DemandSpec>& demands, int split_index,
    graph::NodeId via);

/// Returns dx in [0, demands[split_index].amount]; 0 when even the unsplit
/// demand is not routable under the filter/capacities (ISP treats that as
/// "pick a different candidate").
double max_splittable_amount(const graph::Graph& g,
                             const std::vector<Demand>& demands,
                             int split_index, graph::NodeId via,
                             const graph::EdgeFilter& edge_ok,
                             const graph::EdgeWeight& capacity,
                             const PathLpOptions& options = {});

/// Same LP on a borrowed (typically ViewCache-owned) snapshot; the routable
/// network is the view's edges with positive capacity (see PathLp's
/// borrowed-view constructor).
double max_splittable_amount(const graph::GraphView& view,
                             const std::vector<Demand>& demands,
                             int split_index, graph::NodeId via,
                             const PathLpOptions& options = {});

}  // namespace netrec::mcf
