// Path-based multi-commodity LP with column generation.
//
// All of the paper's flow LPs are instances of one master problem over path
// variables x_p >= 0:
//
//   kMaxRouted  max  sum x_p            (routability test, eq. 2, and the
//               s.t. sum_{p in h} x_p <= d_h        demand-loss referee)
//
//   kMinCost    min  sum cost(p) x_p    (multi-commodity relaxation, eq. 8)
//               s.t. sum_{p in h} x_p  = d_h
//
//   kMaxSplit   max  dx                 (ISP split amount, Section IV-C)
//               s.t. sum_{p in h*} x_p + dx = d_{h*}
//                    sum_{p in (s,v)} x_p - dx = 0
//                    sum_{p in (v,t)} x_p - dx = 0
//                    sum_{p in h} x_p = d_h             (other demands)
//
// all subject to edge capacities sum_{p ni e} x_p <= c_e.  Columns (paths)
// are priced in by Dijkstra on the reduced-cost edge weights, which stay
// nonnegative by LP duality, so pricing is exact and the converged master is
// a true optimum over *all* paths, not just an enumerated pool.  Capacity
// rows can be added lazily (violated-only), which keeps the master tiny on
// large sparse graphs such as the CAIDA topology.
//
// Equality-row modes carry per-demand shortfall variables with a big-M
// penalty so the master is always feasible and column generation can start
// from an empty pool.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "mcf/types.hpp"

namespace netrec::mcf {

enum class PathLpMode { kMaxRouted, kMinCost, kMaxSplit };

struct PathLpOptions {
  double tolerance = 1e-7;
  /// Safety cap on column-generation rounds (each adds >=1 column or row).
  std::size_t max_rounds = 2000;
  /// Edge count at or below which all capacity rows are created eagerly.
  std::size_t eager_capacity_threshold = 160;
  /// Penalty cost for shortfall variables in equality modes.
  double big_m = 1e6;
  /// Initial paths seeded per demand before generation starts.
  std::size_t seed_paths_per_demand = 4;
};

/// Extra row  sum_p (sum_{e in p} edge_cost(e)) x_p <= rhs  over all path
/// columns; used to pin the eq. (8) objective while exploring its optimal
/// face for the MCB/MCW band.
struct PathCostBound {
  graph::EdgeWeight edge_cost;
  double rhs = 0.0;
};

struct PathLpResult {
  /// True when column generation converged to a proven LP optimum.
  bool converged = false;
  /// Mode-specific optimum: total routed (kMaxRouted), total path cost
  /// (kMinCost), or the split amount dx (kMaxSplit).
  double objective = 0.0;
  RoutingResult routing;
  /// Equality modes: per-demand unmet amount (all ~0 iff routable).
  std::vector<double> shortfall;
};

class PathLp {
 public:
  /// `capacity` is consulted for usable edges only; `edge_ok` restricts the
  /// network (typically to working-or-repaired elements, or the full graph
  /// with residual capacities for ISP's invariant checks).
  PathLp(const graph::Graph& g, std::vector<Demand> demands,
         graph::EdgeFilter edge_ok, graph::EdgeWeight capacity,
         PathLpOptions options = {});

  /// Borrowed-view mode: seeds, capacity rows and pricing all run on `view`
  /// (not owned; must outlive solve()) instead of materialising a snapshot.
  /// The routable network is the view's edges with capacity > 1e-9 — cached
  /// views keep drained edges as arcs and this constructor's solve path
  /// skips them exactly where a filter-built view would omit them, so the
  /// two constructions price and route bit-identically.  The view's lengths
  /// must be the unit/hop metric (the callback constructor never configures
  /// lengths).
  PathLp(const graph::GraphView& view, std::vector<Demand> demands,
         PathLpOptions options = {});

  /// Configures the objective; call exactly one before solve().
  void set_max_routed();
  void set_min_cost(graph::EdgeWeight objective_edge_cost);
  void set_max_split(int split_demand_index, graph::NodeId via);

  /// Adds an optimal-face pinning row (kMinCost mode only).
  void add_cost_bound(PathCostBound bound);

  PathLpResult solve();

 private:
  struct ColumnInfo {
    int demand_index;  ///< internal demand index (includes split halves)
    graph::Path path;
    int var = -1;
  };

  const graph::Graph& g_;
  std::vector<Demand> user_demands_;
  graph::EdgeFilter edge_ok_;
  graph::EdgeWeight capacity_;
  const graph::GraphView* borrowed_view_ = nullptr;
  PathLpOptions opt_;

  PathLpMode mode_ = PathLpMode::kMaxRouted;
  bool mode_set_ = false;
  graph::EdgeWeight objective_edge_cost_;
  int split_demand_ = -1;
  graph::NodeId split_via_ = graph::kInvalidNode;
  std::vector<PathCostBound> cost_bounds_;
};

}  // namespace netrec::mcf
