#include "mcf/types.hpp"

namespace netrec::mcf {

std::vector<double> edge_loads(const graph::Graph& g,
                               const std::vector<PathFlow>& flows) {
  std::vector<double> load(g.num_edges(), 0.0);
  for (const PathFlow& f : flows) {
    for (graph::EdgeId e : f.path.edges) {
      load[static_cast<std::size_t>(e)] += f.amount;
    }
  }
  return load;
}

bool routing_is_valid(const graph::Graph& g, const std::vector<Demand>& demands,
                      const std::vector<PathFlow>& flows,
                      const graph::EdgeFilter& edge_ok,
                      const graph::EdgeWeight& capacity, double tol) {
  for (const PathFlow& f : flows) {
    if (f.amount < -tol) return false;
    if (f.demand_index < 0 ||
        f.demand_index >= static_cast<int>(demands.size())) {
      return false;
    }
    const Demand& d = demands[static_cast<std::size_t>(f.demand_index)];
    if (!f.path.connects(g, d.source, d.target)) return false;
    if (edge_ok) {
      for (graph::EdgeId e : f.path.edges) {
        if (!edge_ok(e)) return false;
      }
    }
  }
  const auto load = edge_loads(g, flows);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (load[e] > capacity(static_cast<graph::EdgeId>(e)) + tol) return false;
  }
  return true;
}

double total_demand(const std::vector<Demand>& demands) {
  double total = 0.0;
  for (const Demand& d : demands) total += d.amount;
  return total;
}

}  // namespace netrec::mcf
