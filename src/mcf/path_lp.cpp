#include "mcf/path_lp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "graph/simple_paths.hpp"
#include "graph/view.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/log.hpp"

namespace netrec::mcf {

namespace {
constexpr double kEps = 1e-9;
}

PathLp::PathLp(const graph::Graph& g, std::vector<Demand> demands,
               graph::EdgeFilter edge_ok, graph::EdgeWeight capacity,
               PathLpOptions options)
    : g_(g),
      user_demands_(std::move(demands)),
      edge_ok_(std::move(edge_ok)),
      capacity_(std::move(capacity)),
      opt_(options) {}

PathLp::PathLp(const graph::GraphView& view, std::vector<Demand> demands,
               PathLpOptions options)
    : g_(view.graph()),
      user_demands_(std::move(demands)),
      borrowed_view_(&view),
      opt_(options) {}

void PathLp::set_max_routed() {
  mode_ = PathLpMode::kMaxRouted;
  mode_set_ = true;
}

void PathLp::set_min_cost(graph::EdgeWeight objective_edge_cost) {
  mode_ = PathLpMode::kMinCost;
  objective_edge_cost_ = std::move(objective_edge_cost);
  mode_set_ = true;
}

void PathLp::set_max_split(int split_demand_index, graph::NodeId via) {
  mode_ = PathLpMode::kMaxSplit;
  split_demand_ = split_demand_index;
  split_via_ = via;
  mode_set_ = true;
}

void PathLp::add_cost_bound(PathCostBound bound) {
  cost_bounds_.push_back(std::move(bound));
}

PathLpResult PathLp::solve() {
  if (!mode_set_) throw std::logic_error("PathLp: mode not configured");
  if (mode_ == PathLpMode::kMaxSplit &&
      (split_demand_ < 0 ||
       split_demand_ >= static_cast<int>(user_demands_.size()))) {
    throw std::invalid_argument("PathLp: split demand index out of range");
  }
  if (!cost_bounds_.empty() && mode_ != PathLpMode::kMinCost) {
    throw std::logic_error("PathLp: cost bounds require kMinCost mode");
  }

  // Internal demand list: user demands plus, for kMaxSplit, the two halves
  // (s_h*, via) and (via, t_h*) whose rows are coupled to dx.
  std::vector<Demand> demands = user_demands_;
  const int n_user = static_cast<int>(user_demands_.size());
  int half_a = -1;
  int half_b = -1;
  if (mode_ == PathLpMode::kMaxSplit) {
    const Demand& h = user_demands_[static_cast<std::size_t>(split_demand_)];
    half_a = static_cast<int>(demands.size());
    demands.push_back(Demand{h.source, split_via_, h.amount});
    half_b = static_cast<int>(demands.size());
    demands.push_back(Demand{split_via_, h.target, h.amount});
  }
  const int n_demands = static_cast<int>(demands.size());

  // CSR snapshot of the routable network for this solve: seeding and every
  // pricing round run Dijkstra on it with flat per-edge arrays instead of
  // std::function callbacks.  Borrowed-view mode reuses the caller's
  // (typically ViewCache-owned) snapshot; otherwise one is built here.
  // Default view lengths are the hop metric the seeds use; pricing passes
  // its own per-round length array.
  std::optional<graph::GraphView> owned_view;
  if (!borrowed_view_) {
    graph::ViewConfig view_config;
    view_config.edge_ok = edge_ok_;
    view_config.capacity = capacity_;
    owned_view = graph::GraphView::build(g_, view_config);
  }
  const graph::GraphView& view =
      borrowed_view_ ? *borrowed_view_ : *owned_view;
  // An edge is in the routable network iff it is in the view and — in
  // borrowed mode, whose cached arcs keep drained edges — carries positive
  // capacity.  An owned view's filter already encoded the caller's network.
  auto edge_usable = [&](graph::EdgeId id) {
    if (!view.edge_in_view(id)) return false;
    return borrowed_view_ == nullptr || view.edge_capacity(id) > kEps;
  };
  auto edge_cap = [&](graph::EdgeId id) {
    return borrowed_view_ ? view.edge_capacity(id) : capacity_(id);
  };

  // --- master model ------------------------------------------------------
  lp::Model model;
  model.goal = lp::Goal::kMinimize;  // all modes posed as minimisation

  // Demand rows first (fixed), capacity rows appended after.
  std::vector<int> demand_row(static_cast<std::size_t>(n_demands), -1);
  std::vector<int> shortfall_var(static_cast<std::size_t>(n_demands), -1);
  for (int h = 0; h < n_demands; ++h) {
    const Demand& d = demands[static_cast<std::size_t>(h)];
    const bool is_half = h >= n_user;
    switch (mode_) {
      case PathLpMode::kMaxRouted:
        demand_row[static_cast<std::size_t>(h)] =
            model.add_constraint(lp::Sense::kLessEqual, d.amount);
        break;
      case PathLpMode::kMinCost:
      case PathLpMode::kMaxSplit: {
        const double rhs = is_half ? 0.0 : d.amount;
        demand_row[static_cast<std::size_t>(h)] =
            model.add_constraint(lp::Sense::kEqual, rhs);
        if (!is_half) {
          // Shortfall keeps the master feasible with an empty column pool.
          const int sv = model.add_variable(0.0, d.amount, opt_.big_m);
          model.set_coefficient(demand_row[static_cast<std::size_t>(h)], sv,
                                1.0);
          shortfall_var[static_cast<std::size_t>(h)] = sv;
        }
        break;
      }
    }
  }

  int dx_var = -1;
  if (mode_ == PathLpMode::kMaxSplit) {
    const Demand& h = user_demands_[static_cast<std::size_t>(split_demand_)];
    dx_var = model.add_variable(0.0, h.amount, -1.0);  // min -dx == max dx
    model.set_coefficient(demand_row[static_cast<std::size_t>(split_demand_)],
                          dx_var, 1.0);
    model.set_coefficient(demand_row[static_cast<std::size_t>(half_a)],
                          dx_var, -1.0);
    model.set_coefficient(demand_row[static_cast<std::size_t>(half_b)],
                          dx_var, -1.0);
  }

  // Optimal-face pinning rows (kMinCost only).
  std::vector<int> bound_row(cost_bounds_.size(), -1);
  for (std::size_t b = 0; b < cost_bounds_.size(); ++b) {
    bound_row[b] =
        model.add_constraint(lp::Sense::kLessEqual, cost_bounds_[b].rhs);
  }

  // Capacity rows: eager on small graphs, lazy (violation-driven) otherwise.
  const bool eager = g_.num_edges() <= opt_.eager_capacity_threshold;
  std::vector<int> capacity_row(g_.num_edges(), -1);
  auto add_capacity_row = [&](graph::EdgeId e) {
    capacity_row[static_cast<std::size_t>(e)] =
        model.add_constraint(lp::Sense::kLessEqual, edge_cap(e));
  };
  if (eager) {
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if (edge_usable(id)) add_capacity_row(id);
    }
  }

  std::vector<ColumnInfo> columns;
  // Column-pool sizing and duplicate detection: the seed pass and every
  // pricing round append columns, so reserve the expected seed volume up
  // front, and refuse a column whose (demand, arc set) already exists —
  // a duplicate is inert in the master (same coefficients, ties broken by
  // lower index) but bloats every subsequent simplex scan.
  const std::size_t expected_columns =
      static_cast<std::size_t>(n_demands) * opt_.seed_paths_per_demand + 16;
  columns.reserve(expected_columns);
  model.reserve(expected_columns + static_cast<std::size_t>(n_demands) + 2,
                static_cast<std::size_t>(n_demands) + cost_bounds_.size() +
                    (eager ? g_.num_edges() : 0) + 2);
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> column_keys;
  auto column_key = [](int demand_index, const graph::Path& p) {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
      return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    };
    std::uint64_t h = mix(0x243f6a8885a308d3ULL,
                          static_cast<std::uint64_t>(demand_index));
    for (graph::EdgeId e : p.edges) {
      h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e)));
    }
    return h;
  };
  auto path_objective_cost = [&](const graph::Path& p) -> double {
    if (mode_ == PathLpMode::kMaxRouted) return -1.0;
    if (mode_ == PathLpMode::kMaxSplit) return 0.0;
    double c = 0.0;
    for (graph::EdgeId e : p.edges) c += objective_edge_cost_(e);
    return c;
  };
  /// Returns false when the column already exists (duplicate skipped).
  auto add_column = [&](int demand_index, graph::Path path) {
    const std::uint64_t key = column_key(demand_index, path);
    auto& bucket = column_keys[key];
    for (std::size_t c : bucket) {
      if (columns[c].demand_index == demand_index &&
          columns[c].path.edges == path.edges) {
        return false;
      }
    }
    bucket.push_back(columns.size());
    ColumnInfo info;
    info.demand_index = demand_index;
    info.var = model.add_variable(0.0, lp::kInfinity,
                                  path_objective_cost(path));
    model.set_coefficient(demand_row[static_cast<std::size_t>(demand_index)],
                          info.var, 1.0);
    for (std::size_t b = 0; b < cost_bounds_.size(); ++b) {
      double c = 0.0;
      for (graph::EdgeId e : path.edges) c += cost_bounds_[b].edge_cost(e);
      if (c != 0.0) model.set_coefficient(bound_row[b], info.var, c);
    }
    // Paths are simple, so each edge appears at most once.
    for (graph::EdgeId e : path.edges) {
      const int row = capacity_row[static_cast<std::size_t>(e)];
      if (row >= 0) model.set_coefficient(row, info.var, 1.0);
    }
    info.path = std::move(path);
    columns.push_back(std::move(info));
    return true;
  };

  // Seed columns: a few successive shortest (by hops) paths per demand.
  // (successive_shortest_paths tracks residuals from the view capacities,
  // so drained arcs of a borrowed view are skipped from the first path.)
  for (int h = 0; h < n_demands; ++h) {
    const Demand& d = demands[static_cast<std::size_t>(h)];
    if (d.source == d.target || d.amount <= kEps) continue;
    auto seeds = graph::successive_shortest_paths(
        view, d.source, d.target, d.amount, opt_.seed_paths_per_demand);
    for (auto& p : seeds.paths) add_column(h, std::move(p));
  }

  // --- column generation loop ---------------------------------------------
  lp::Basis basis;
  lp::Solution lp_solution;
  lp::SolveOptions lp_options;
  bool converged = false;

  for (std::size_t round = 0; round < opt_.max_rounds; ++round) {
    lp_solution = lp::solve(model, lp_options, &basis);
    if (lp_solution.status != lp::SolveStatus::kOptimal) {
      NETREC_LOG(kWarn) << "PathLp master returned "
                        << lp::to_string(lp_solution.status);
      break;
    }

    // Lazy capacity rows: activate every violated edge, then re-solve.
    if (!eager) {
      std::vector<double> load(g_.num_edges(), 0.0);
      for (const ColumnInfo& col : columns) {
        const double x = lp_solution.x[static_cast<std::size_t>(col.var)];
        if (x <= kEps) continue;
        for (graph::EdgeId e : col.path.edges) {
          load[static_cast<std::size_t>(e)] += x;
        }
      }
      bool added_row = false;
      for (std::size_t e = 0; e < g_.num_edges(); ++e) {
        const auto id = static_cast<graph::EdgeId>(e);
        if (capacity_row[e] >= 0) continue;
        if (load[e] > edge_cap(id) + opt_.tolerance) {
          add_capacity_row(id);
          for (const ColumnInfo& col : columns) {
            for (graph::EdgeId pe : col.path.edges) {
              if (pe == id) {
                model.set_coefficient(capacity_row[e], col.var, 1.0);
                break;
              }
            }
          }
          added_row = true;
        }
      }
      if (added_row) {
        basis = lp::Basis{};  // row structure changed; cold start
        continue;
      }
    }

    // Pricing: for each demand, shortest path under reduced-cost weights.
    // Capacity duals are <= 0 in minimisation, so -y_e >= 0; kMinCost adds
    // the (nonnegative) objective edge cost and the pinned-bound terms.
    // The weights are fixed for the round, so they are flattened into one
    // per-edge array and every demand's Dijkstra reads flat memory.
    std::vector<double> edge_weight(g_.num_edges(), 0.0);
    for (std::size_t e = 0; e < g_.num_edges(); ++e) {
      const auto id = static_cast<graph::EdgeId>(e);
      if (!edge_usable(id)) continue;
      double w = 0.0;
      const int row = capacity_row[e];
      if (row >= 0) w -= lp_solution.duals[static_cast<std::size_t>(row)];
      if (mode_ == PathLpMode::kMinCost) {
        w += objective_edge_cost_(id);
        for (std::size_t b = 0; b < cost_bounds_.size(); ++b) {
          w -= lp_solution.duals[static_cast<std::size_t>(bound_row[b])] *
               cost_bounds_[b].edge_cost(id);
        }
      }
      edge_weight[e] = std::max(w, 0.0);
    }

    bool added_column = false;
    for (int h = 0; h < n_demands; ++h) {
      const Demand& d = demands[static_cast<std::size_t>(h)];
      if (d.source == d.target || d.amount <= kEps) continue;
      const double y_h =
          lp_solution.duals[static_cast<std::size_t>(
              demand_row[static_cast<std::size_t>(h)])];
      // Improving threshold by mode (see header derivation):
      //   kMaxRouted: dist < 1 + y_h; kMinCost/kMaxSplit: dist < y_h.
      const double threshold =
          (mode_ == PathLpMode::kMaxRouted ? 1.0 + y_h : y_h) -
          opt_.tolerance * 10.0;
      if (threshold <= 0.0) continue;  // no path can improve
      // Borrowed views skip drained arcs (a filter-built view omits them).
      auto tree = borrowed_view_
                      ? graph::dijkstra(view, d.source, edge_weight,
                                        view.edge_capacities())
                      : graph::dijkstra(view, d.source, edge_weight);
      if (!tree.reached(d.target)) continue;
      if (tree.distance[static_cast<std::size_t>(d.target)] < threshold) {
        auto path = tree.path_to(g_, d.target);
        // A re-derived duplicate proves no new column improves this
        // demand (its reduced cost is already ~0); do not loop on it.
        if (add_column(h, std::move(*path))) added_column = true;
      }
    }
    if (!added_column) {
      converged = true;
      break;
    }
  }

  // --- result extraction ---------------------------------------------------
  PathLpResult result;
  result.converged =
      converged && lp_solution.status == lp::SolveStatus::kOptimal;
  result.shortfall.assign(static_cast<std::size_t>(n_user), 0.0);
  result.routing.routed.assign(static_cast<std::size_t>(n_user), 0.0);
  if (lp_solution.status != lp::SolveStatus::kOptimal) return result;

  // Degenerate demands (self-loops, zero amounts) are trivially satisfied.
  for (int h = 0; h < n_user; ++h) {
    const Demand& d = user_demands_[static_cast<std::size_t>(h)];
    if (d.source == d.target && d.amount > 0.0) {
      result.routing.routed[static_cast<std::size_t>(h)] = d.amount;
      result.routing.total_routed += d.amount;
    }
  }
  for (const ColumnInfo& col : columns) {
    const double x = lp_solution.x[static_cast<std::size_t>(col.var)];
    if (x <= opt_.tolerance) continue;
    if (col.demand_index < n_user) {
      result.routing.routed[static_cast<std::size_t>(col.demand_index)] += x;
      result.routing.total_routed += x;
    }
    PathFlow flow;
    flow.demand_index = col.demand_index;
    flow.path = col.path;
    flow.amount = x;
    result.routing.flows.push_back(std::move(flow));
  }
  double total_shortfall = 0.0;
  for (int h = 0; h < n_user; ++h) {
    const int sv = shortfall_var[static_cast<std::size_t>(h)];
    if (sv >= 0) {
      result.shortfall[static_cast<std::size_t>(h)] =
          lp_solution.x[static_cast<std::size_t>(sv)];
      total_shortfall += result.shortfall[static_cast<std::size_t>(h)];
    }
  }

  switch (mode_) {
    case PathLpMode::kMaxRouted: {
      result.objective = -lp_solution.objective;
      double covered = 0.0;
      for (int h = 0; h < n_user; ++h) {
        covered += std::min(
            result.routing.routed[static_cast<std::size_t>(h)],
            user_demands_[static_cast<std::size_t>(h)].amount);
      }
      result.routing.fully_routed =
          covered >= total_demand(user_demands_) - 1e-6;
      break;
    }
    case PathLpMode::kMinCost:
      result.objective = lp_solution.objective -
                         opt_.big_m * total_shortfall;
      result.routing.fully_routed = total_shortfall <= 1e-6;
      break;
    case PathLpMode::kMaxSplit:
      result.objective =
          dx_var >= 0 ? lp_solution.x[static_cast<std::size_t>(dx_var)] : 0.0;
      result.routing.fully_routed = total_shortfall <= 1e-6;
      break;
  }
  return result;
}

}  // namespace netrec::mcf
