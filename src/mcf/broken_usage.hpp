// The multi-commodity relaxation of MinR (paper eq. 8) and its optimal face.
//
// Eq. (8) minimises the repair-cost-weighted flow crossing broken edges
// subject to full demand routing.  Its optimal solutions differ wildly in
// how many broken elements they touch (paper Fig. 3): MCB/MCW are the best
// and worst members of the optimal face.  Finding the true MCB is NP-hard
// (it is MinR again), so — like the paper — we characterise the face by
// sampling: pin the objective to its optimum with a cost-bound row, then
// re-optimise randomised secondary edge costs and count touched repairs.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "mcf/path_lp.hpp"
#include "mcf/types.hpp"
#include "util/rng.hpp"

namespace netrec::mcf {

struct BrokenUsageResult {
  bool feasible = false;    ///< all demand routed
  double cost = 0.0;        ///< eq. (8) objective at optimum
  RoutingResult routing;
};

/// Solves eq. (8): min sum over broken edges of k^e * (flow on edge),
/// with every demand fully routed under `capacity`.  The supply graph is the
/// *full* graph (broken elements usable — using them is what costs).
BrokenUsageResult min_broken_usage(const graph::Graph& g,
                                   const std::vector<Demand>& demands,
                                   const PathLpOptions& options = {});

/// Repairs implied by a routing: broken edges carrying flow and broken
/// nodes touched by flow-carrying paths.
struct ImpliedRepairs {
  std::vector<graph::EdgeId> edges;
  std::vector<graph::NodeId> nodes;
  std::size_t total() const { return edges.size() + nodes.size(); }
};

ImpliedRepairs implied_repairs(const graph::Graph& g,
                               const std::vector<PathFlow>& flows,
                               double tol = 1e-6);

struct OptimalFaceBand {
  bool feasible = false;
  std::size_t best_repairs = 0;   ///< MCB estimate (fewest seen)
  std::size_t worst_repairs = 0;  ///< MCW estimate (most seen)
  std::vector<std::size_t> samples;
};

/// Samples `samples` vertices of eq. (8)'s optimal face with randomised
/// secondary objectives and reports the repair-count band.
OptimalFaceBand explore_optimal_face(const graph::Graph& g,
                                     const std::vector<Demand>& demands,
                                     std::size_t samples, util::Rng& rng,
                                     const PathLpOptions& options = {});

}  // namespace netrec::mcf
