// Repair scheduling: ordering a MinR repair set for progressive recovery.
//
// MinR (and ISP) decide *what* to repair; field crews need an *order*.  The
// related work the paper contrasts against (Wang, Qiao & Yu, "On progressive
// network recovery after a major disruption", INFOCOM 2011 — ref. [32])
// optimises restored throughput over time directly; this module brings that
// view to any MinR solution: greedily execute next the repair with the
// largest marginal restored demand, so critical service comes back as early
// as the chosen repair set allows.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "mcf/path_lp.hpp"

namespace netrec::heuristics {

struct ScheduleStep {
  bool is_node = false;
  graph::NodeId node = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidEdge;
  /// Demand volume routable after this step completes.
  double restored_after = 0.0;
  /// Human-readable description ("site X" / "link X - Y").
  std::string label;
};

struct RecoverySchedule {
  std::vector<ScheduleStep> steps;
  double total_demand = 0.0;

  /// Area-under-curve of restored demand over steps, normalised to [0, 1];
  /// 1 means everything restored instantly (the Wang et al. objective,
  /// with unit-time repairs).  Computed by util::restoration_auc.
  double restoration_auc() const;

  /// Steps needed to restore `fraction` of the demand (steps.size()+1 when
  /// never reached).  Computed by util::steps_to_fraction.
  std::size_t steps_to_restore(double fraction) const;

  /// The restored-demand series, one entry per step (the input the
  /// util::stats time-series helpers consume).
  std::vector<double> restored_series() const;
};

/// Human-readable repair labels ("site X" / "link X - Y"), shared by the
/// scheduler and the recovery::Timeline policies.
std::string node_label(const graph::Graph& g, graph::NodeId n);
std::string edge_label(const graph::Graph& g, graph::EdgeId e);

struct ScheduleOptions {
  /// Score candidate prefixes with the exact LP referee; the default uses
  /// the greedy router (cheap, still monotone in practice) and verifies the
  /// final point exactly.
  bool exact_scoring = false;
  mcf::PathLpOptions lp;
};

/// Orders `solution`'s repair set by greedy marginal restored demand.
/// The schedule contains every repair exactly once.
RecoverySchedule schedule_repairs(const core::RecoveryProblem& problem,
                                  const core::RecoverySolution& solution,
                                  const ScheduleOptions& options = {});

}  // namespace netrec::heuristics
