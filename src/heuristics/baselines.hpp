// Baseline recovery policies (paper Section VI and the ALL yardstick).
//
//  * ALL      — repair every broken element (the figures' upper line).
//  * SRT      — shortest-path repair: per demand (largest first), repair the
//               successive shortest paths needed to carry it, treating
//               demands independently; may lose demand when paths overlap.
//  * GRD-COM  — knapsack-style greedy with flow commitment: rank all simple
//               paths by repair-cost/capacity, repair in rank order,
//               committing flow as it goes; may lose demand to bad commits.
//  * GRD-NC   — same ranking, no commitment: repairs paths until the exact
//               routability test passes; never loses demand on feasible
//               instances but repairs more.
//
// The greedy pair needs the enumerated path pool P(H,G); exactly like the
// paper, they are only usable when that enumeration is tractable (the bench
// drivers skip them on the CAIDA-scale topology).
#pragma once

#include "core/problem.hpp"
#include "mcf/path_lp.hpp"

namespace netrec::heuristics {

struct GreedyOptions {
  /// Simple-path enumeration limits for P(H,G).
  std::size_t max_paths_per_pair = 4000;
  std::size_t max_hops = 20;
  mcf::PathLpOptions lp;
};

/// Repairs everything broken.
core::RecoverySolution solve_all(const core::RecoveryProblem& problem);

/// Shortest-path repair heuristic (Algorithm SRT).
core::RecoverySolution solve_srt(const core::RecoveryProblem& problem,
                                 const mcf::PathLpOptions& lp = {});

/// Greedy Commitment (Algorithm GRD-COM).
core::RecoverySolution solve_grd_com(const core::RecoveryProblem& problem,
                                     const GreedyOptions& options = {});

/// Greedy No-Commitment (Algorithm GRD-NC).
core::RecoverySolution solve_grd_nc(const core::RecoveryProblem& problem,
                                    const GreedyOptions& options = {});

}  // namespace netrec::heuristics
