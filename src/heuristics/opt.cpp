#include "heuristics/opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/isp.hpp"
#include "heuristics/local_search.hpp"
#include "lp/model.hpp"
#include "steiner/steiner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace netrec::heuristics {

namespace {
constexpr double kEps = 1e-9;

/// Builds the arc-flow MinR MILP (eq. 1 with disaggregated linking) and the
/// list of binary variable indices.  delta variables exist only for broken
/// elements; working elements are hard-wired usable.
struct MinrModel {
  lp::Model model;
  std::vector<int> integer_vars;
  std::vector<int> delta_of_edge;  ///< -1 when edge not broken
  std::vector<int> delta_of_node;  ///< -1 when node not broken
};

MinrModel build_minr_milp(const core::RecoveryProblem& problem) {
  const graph::Graph& g = problem.graph;
  MinrModel out;
  out.model.goal = lp::Goal::kMinimize;
  out.delta_of_edge.assign(g.num_edges(), -1);
  out.delta_of_node.assign(g.num_nodes(), -1);

  const int n_demands = static_cast<int>(problem.demands.size());
  const double total = problem.total_demand();

  // Demand endpoints are always used, so broken endpoints must be repaired:
  // fix their deltas at 1 (a presolve step that removes binaries).
  std::vector<char> endpoint(g.num_nodes(), 0);
  for (const auto& d : problem.demands) {
    if (d.amount <= kEps || d.source == d.target) continue;
    endpoint[static_cast<std::size_t>(d.source)] = 1;
    endpoint[static_cast<std::size_t>(d.target)] = 1;
  }

  // Flow variables f[h][e][dir]: dir 0 = u->v, 1 = v->u.  No single
  // commodity ever needs more than d_h on an edge, so cap the variable.
  auto flow_var = [&](int h, std::size_t e, int dir) {
    return (static_cast<int>(e) * 2 + dir) * n_demands + h;
  };
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const double cap = g.edge_capacity(static_cast<graph::EdgeId>(e));
    for (int dir = 0; dir < 2; ++dir) {
      for (int h = 0; h < n_demands; ++h) {
        const double d =
            problem.demands[static_cast<std::size_t>(h)].amount;
        out.model.add_variable(0.0, std::min(cap, d), 0.0);
      }
    }
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_broken(static_cast<graph::EdgeId>(e))) {
      out.delta_of_edge[e] = out.model.add_variable(
          0.0, 1.0, g.edge_repair_cost(static_cast<graph::EdgeId>(e)));
      out.integer_vars.push_back(out.delta_of_edge[e]);
    }
  }
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    if (g.node_broken(static_cast<graph::NodeId>(n))) {
      const double fixed_low = endpoint[n] ? 1.0 : 0.0;
      out.delta_of_node[n] = out.model.add_variable(
          fixed_low, 1.0, g.node_repair_cost(static_cast<graph::NodeId>(n)));
      if (!endpoint[n]) out.integer_vars.push_back(out.delta_of_node[n]);
    }
  }

  // Capacity + edge-activation rows.  Big-M tightening: flow across an edge
  // never exceeds the total demand, so min(c, D) multiplies delta.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const double cap = g.edge_capacity(static_cast<graph::EdgeId>(e));
    const double big_m = std::min(cap, total);
    const int row = out.model.add_constraint(
        lp::Sense::kLessEqual, out.delta_of_edge[e] >= 0 ? 0.0 : cap);
    for (int h = 0; h < n_demands; ++h) {
      out.model.set_coefficient(row, flow_var(h, e, 0), 1.0);
      out.model.set_coefficient(row, flow_var(h, e, 1), 1.0);
    }
    if (out.delta_of_edge[e] >= 0) {
      out.model.set_coefficient(row, out.delta_of_edge[e], -big_m);
      // Per-demand disaggregation: f_h(e) <= min(c, d_h) * delta_e.  Much
      // tighter than the aggregate row when one demand saturates the edge.
      for (int h = 0; h < n_demands; ++h) {
        const double d = problem.demands[static_cast<std::size_t>(h)].amount;
        const int drow = out.model.add_constraint(lp::Sense::kLessEqual, 0.0);
        out.model.set_coefficient(drow, flow_var(h, e, 0), 1.0);
        out.model.set_coefficient(drow, flow_var(h, e, 1), 1.0);
        out.model.set_coefficient(drow, out.delta_of_edge[e],
                                  -std::min(cap, d));
      }
    }
  }
  // Node-activation rows (disaggregated, stronger than the eta_max form):
  // for each broken node i and incident edge e: sum_h flow(e) <= M delta_i.
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    if (out.delta_of_node[n] < 0 || endpoint[n]) continue;
    for (graph::EdgeId e :
         g.incident_edges(static_cast<graph::NodeId>(n))) {
      const int row = out.model.add_constraint(lp::Sense::kLessEqual, 0.0);
      for (int h = 0; h < n_demands; ++h) {
        out.model.set_coefficient(
            row, flow_var(h, static_cast<std::size_t>(e), 0), 1.0);
        out.model.set_coefficient(
            row, flow_var(h, static_cast<std::size_t>(e), 1), 1.0);
      }
      out.model.set_coefficient(row, out.delta_of_node[n],
                                -std::min(g.edge_capacity(e), total));
    }
  }
  // Endpoint cut rows: the edges at s_h/t_h must jointly open enough
  // activated capacity for d_h (valid inequalities; they sharpen the root).
  for (int h = 0; h < n_demands; ++h) {
    const mcf::Demand& d = problem.demands[static_cast<std::size_t>(h)];
    if (d.amount <= kEps || d.source == d.target) continue;
    for (graph::NodeId end : {d.source, d.target}) {
      const int row =
          out.model.add_constraint(lp::Sense::kGreaterEqual, d.amount);
      for (graph::EdgeId e : g.incident_edges(end)) {
        const double cap = std::min(g.edge_capacity(e), d.amount);
        const int delta = out.delta_of_edge[static_cast<std::size_t>(e)];
        if (delta >= 0) {
          out.model.set_coefficient(row, delta, cap);
        } else {
          // Working edge: permanently available capacity.
          out.model.constraint(row).rhs -= cap;
        }
      }
    }
  }
  // Flow conservation per (demand, node).
  for (int h = 0; h < n_demands; ++h) {
    const mcf::Demand& d = problem.demands[static_cast<std::size_t>(h)];
    for (std::size_t n = 0; n < g.num_nodes(); ++n) {
      const auto node = static_cast<graph::NodeId>(n);
      double b = 0.0;
      if (node == d.source) b += d.amount;
      if (node == d.target) b -= d.amount;
      if (d.source == d.target) b = 0.0;
      const int row = out.model.add_constraint(lp::Sense::kEqual, b);
      for (graph::EdgeId e : g.incident_edges(node)) {
        const int out_dir = g.edge_u(e) == node ? 0 : 1;
        out.model.set_coefficient(
            row, flow_var(h, static_cast<std::size_t>(e), out_dir), 1.0);
        out.model.set_coefficient(
            row, flow_var(h, static_cast<std::size_t>(e), 1 - out_dir), -1.0);
      }
    }
  }
  return out;
}

}  // namespace

bool is_connectivity_only(const core::RecoveryProblem& problem) {
  double min_cap = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
    const double cap = problem.graph.edge_capacity(static_cast<graph::EdgeId>(e));
    if (cap > kEps) min_cap = std::min(min_cap, cap);
  }
  return problem.total_demand() <= min_cap + kEps;
}

OptOutcome solve_opt(const core::RecoveryProblem& problem,
                     const OptOptions& options,
                     const core::RecoverySolution* warm) {
  util::Timer timer;
  OptOutcome outcome;
  outcome.lower_bound = -std::numeric_limits<double>::infinity();

  // Incumbent: caller's warm solution or a fresh ISP run, diversified with
  // randomised-metric restarts and tightened by local search.
  core::RecoverySolution incumbent;
  if (warm != nullptr) {
    incumbent = *warm;
  } else {
    core::IspSolver isp(problem);
    incumbent = isp.solve();
  }
  auto better = [](const core::RecoverySolution& a,
                   const core::RecoverySolution& b) {
    const bool a_full = a.satisfied_fraction >= 1.0 - 1e-6;
    const bool b_full = b.satisfied_fraction >= 1.0 - 1e-6;
    if (a_full != b_full) return a_full;
    if (a_full) return a.repair_cost < b.repair_cost - 1e-9;
    return a.satisfied_fraction > b.satisfied_fraction + 1e-9;
  };
  for (std::size_t restart = 0; restart < options.isp_restarts; ++restart) {
    core::IspOptions iopt;
    iopt.length_jitter = 0.35;
    iopt.jitter_seed = 0x9e37 + restart * 7919;
    core::IspSolver isp(problem, iopt);
    const core::RecoverySolution candidate = isp.solve();
    if (better(candidate, incumbent)) incumbent = candidate;
  }
  LocalSearchOptions ls;
  ls.lp = options.lp;
  if (incumbent.satisfied_fraction >= 1.0 - 1e-6) {
    incumbent = reduce_repairs(problem, incumbent, ls);
  }
  incumbent.algorithm = "OPT";
  outcome.solution = incumbent;
  outcome.engine = "fallback";

  // Engine 1: exact Steiner forest for connectivity-only instances.
  if (options.use_steiner_specialization && is_connectivity_only(problem)) {
    const graph::Graph& g = problem.graph;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    for (const auto& d : problem.demands) {
      if (d.amount > kEps && d.source != d.target) {
        pairs.emplace_back(d.source, d.target);
      }
    }
    steiner::SteinerOptions sopt;
    sopt.max_terminals = options.steiner_max_terminals;
    const auto forest = steiner::steiner_forest(
        g, pairs,
        [&g](graph::EdgeId e) {
          return g.edge_broken(e) ? g.edge_repair_cost(e) : 0.0;
        },
        [&g](graph::NodeId n) {
          return g.node_broken(n) ? g.node_repair_cost(n) : 0.0;
        },
        [&g](graph::EdgeId e) { return g.edge_capacity(e) > kEps; }, sopt);
    if (forest.solved) {
      core::RecoverySolution exact;
      exact.algorithm = "OPT";
      for (graph::NodeId n : forest.nodes) {
        if (g.node_broken(n)) exact.repaired_nodes.push_back(n);
      }
      for (graph::EdgeId e : forest.edges) {
        if (g.edge_broken(e)) exact.repaired_edges.push_back(e);
      }
      core::score_solution(problem, exact);
      exact.wall_seconds = timer.elapsed_seconds();
      // Trust but verify: the forest must satisfy the demand.
      if (exact.satisfied_fraction >= 1.0 - 1e-6) {
        outcome.solution = exact;
        outcome.proven_optimal = true;
        outcome.lower_bound = exact.repair_cost;
        outcome.engine = "steiner";
        return outcome;
      }
      NETREC_LOG(kWarn) << "OPT: steiner forest failed verification; "
                           "falling through to MILP";
    }
  }

  // Engine 2: branch-and-bound on the arc-flow MILP.
  if (options.use_milp && !problem.demands.empty()) {
    MinrModel minr = build_minr_milp(problem);
    milp::MilpOptions mopt = options.milp;
    mopt.time_limit_seconds = options.time_limit_seconds;
    milp::MilpSolver solver(std::move(minr.model),
                            std::move(minr.integer_vars), mopt);
    if (incumbent.satisfied_fraction >= 1.0 - 1e-6) {
      // +tol so an equally-good MILP solution is still accepted.
      solver.set_cutoff(incumbent.repair_cost + 1e-6);
    }
    const milp::MilpResult result = solver.solve();
    outcome.lower_bound = result.bound;

    if (result.feasible && !result.x.empty()) {
      core::RecoverySolution milp_solution;
      milp_solution.algorithm = "OPT";
      for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
        const int var = minr.delta_of_edge[e];
        if (var >= 0 && result.x[static_cast<std::size_t>(var)] > 0.5) {
          milp_solution.repaired_edges.push_back(
              static_cast<graph::EdgeId>(e));
        }
      }
      for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
        const int var = minr.delta_of_node[n];
        if (var >= 0 && result.x[static_cast<std::size_t>(var)] > 0.5) {
          milp_solution.repaired_nodes.push_back(
              static_cast<graph::NodeId>(n));
        }
      }
      core::score_solution(problem, milp_solution);
      if (milp_solution.satisfied_fraction >= 1.0 - 1e-6 &&
          (outcome.solution.satisfied_fraction < 1.0 - 1e-6 ||
           milp_solution.repair_cost < outcome.solution.repair_cost - 1e-9)) {
        outcome.solution = milp_solution;
        outcome.engine = "milp";
      }
    }
    // Optimality proof: either the tree closed on a better-or-equal MILP
    // solution, or it closed under the incumbent cutoff (incumbent optimal).
    if (result.proven_optimal ||
        (!result.feasible &&
         result.bound >= outcome.solution.repair_cost - 1e-6)) {
      outcome.proven_optimal =
          outcome.solution.satisfied_fraction >= 1.0 - 1e-6;
      if (outcome.proven_optimal) outcome.engine = "milp";
    }
    if (result.bound >= outcome.solution.repair_cost - 1e-6 &&
        outcome.solution.satisfied_fraction >= 1.0 - 1e-6) {
      outcome.proven_optimal = true;
    }
  }

  outcome.solution.wall_seconds = timer.elapsed_seconds();
  return outcome;
}

}  // namespace netrec::heuristics
