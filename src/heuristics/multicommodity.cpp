#include "heuristics/multicommodity.hpp"

namespace netrec::heuristics {

MulticommodityBand multicommodity_band(const core::RecoveryProblem& problem,
                                       std::size_t samples, util::Rng& rng,
                                       const mcf::PathLpOptions& lp) {
  MulticommodityBand band;
  const auto base = mcf::min_broken_usage(problem.graph, problem.demands, lp);
  if (!base.feasible) return band;
  band.relaxation_cost = base.cost;
  const auto face = mcf::explore_optimal_face(problem.graph, problem.demands,
                                              samples, rng, lp);
  if (!face.feasible) return band;
  band.feasible = true;
  band.mcb_repairs = face.best_repairs;
  band.mcw_repairs = face.worst_repairs;
  return band;
}

}  // namespace netrec::heuristics
