// Multi-commodity relaxation driver (paper Section VI-A, Fig. 3).
//
// Solves eq. (8) and reports the repair-count band of its optimal face: MCB
// (fewest repairs seen) and MCW (most).  The paper uses this to argue the
// relaxation is unreliable as a recovery policy — its equally-optimal
// solutions range from near-OPT to near-ALL; we reproduce that band by
// sampling the face (finding the true MCB is NP-hard, as the paper notes).
#pragma once

#include "core/problem.hpp"
#include "mcf/broken_usage.hpp"
#include "util/rng.hpp"

namespace netrec::heuristics {

struct MulticommodityBand {
  bool feasible = false;
  std::size_t mcb_repairs = 0;  ///< best (fewest) repairs on the face
  std::size_t mcw_repairs = 0;  ///< worst (most) repairs on the face
  double relaxation_cost = 0.0; ///< eq. (8) optimum
};

MulticommodityBand multicommodity_band(const core::RecoveryProblem& problem,
                                       std::size_t samples, util::Rng& rng,
                                       const mcf::PathLpOptions& lp = {});

}  // namespace netrec::heuristics
