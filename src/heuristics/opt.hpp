// OPT — the exact / best-effort MinR solver (paper eq. 1).
//
// Three engines, picked by instance structure and budget:
//
//  1. Steiner specialisation: when the whole demand fits on any single edge
//     (sum d_h <= min capacity), MinR equals node-weighted Steiner Forest
//     (Theorem 1's reduction run forward) and Dreyfus-Wagner solves it
//     *provably optimally* — this covers the paper's Fig. 7 family.
//  2. Branch-and-bound on the arc-flow MILP with disaggregated linking rows
//     (a strictly tighter relaxation than eq. 1(c)'s eta_max form), seeded
//     with an ISP + local-search incumbent as cutoff.
//  3. Fallback: the incumbent itself, i.e. ISP tightened by local search.
//
// The result records whether optimality was proven within the budget; bench
// drivers report that flag so EXPERIMENTS.md can label OPT data points as
// exact or best-found — the paper's own 27-hour Gurobi runs get the same
// caveat treatment.
#pragma once

#include <optional>

#include "core/problem.hpp"
#include "mcf/path_lp.hpp"
#include "milp/branch_and_bound.hpp"

namespace netrec::heuristics {

struct OptOptions {
  double time_limit_seconds = 10.0;
  bool use_steiner_specialization = true;
  bool use_milp = true;
  std::size_t steiner_max_terminals = 16;
  /// Extra randomised-metric ISP runs used to diversify the incumbent on
  /// instances where the MILP is out of reach (e.g. CAIDA scale).
  std::size_t isp_restarts = 2;
  milp::MilpOptions milp;
  mcf::PathLpOptions lp;
};

struct OptOutcome {
  core::RecoverySolution solution;
  bool proven_optimal = false;
  /// Lower bound on the optimal repair cost (equals solution cost when
  /// proven; -inf when nothing could be bounded in the budget).
  double lower_bound = 0.0;
  const char* engine = "fallback";
};

/// Solves MinR.  `warm` (typically an ISP solution) seeds the incumbent; if
/// absent, ISP is run internally.
OptOutcome solve_opt(const core::RecoveryProblem& problem,
                     const OptOptions& options = {},
                     const core::RecoverySolution* warm = nullptr);

/// True when every demand fits any single positive-capacity edge, i.e. the
/// instance is connectivity-only and the Steiner engine is exact.
bool is_connectivity_only(const core::RecoveryProblem& problem);

}  // namespace netrec::heuristics
