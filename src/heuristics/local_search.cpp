#include "heuristics/local_search.hpp"

#include <algorithm>

#include "core/repair_state.hpp"
#include "mcf/routing.hpp"
#include "util/timer.hpp"

namespace netrec::heuristics {

namespace {

/// A repair-set element, node or edge.
struct Element {
  bool is_node;
  int id;
  double cost;
};

}  // namespace

core::RecoverySolution reduce_repairs(const core::RecoveryProblem& problem,
                                      const core::RecoverySolution& solution,
                                      const LocalSearchOptions& options) {
  util::Timer timer;
  const graph::Graph& g = problem.graph;
  const auto cap = mcf::static_capacity(g);

  // Keep flags; start from the input repair set.
  std::vector<char> node_kept(g.num_nodes(), 0);
  std::vector<char> edge_kept(g.num_edges(), 0);
  for (graph::NodeId n : solution.repaired_nodes) {
    node_kept[static_cast<std::size_t>(n)] = 1;
  }
  for (graph::EdgeId e : solution.repaired_edges) {
    edge_kept[static_cast<std::size_t>(e)] = 1;
  }

  // Flat per-edge usability under the current keep flags, updated
  // incrementally when a flip changes the few edges it touches; the
  // routability probes then consult an O(1) array lookup instead of
  // re-deriving brokenness per edge per probe.
  auto edge_usable_now = [&](graph::EdgeId e) {
    if (g.edge_broken(e) && !edge_kept[static_cast<std::size_t>(e)]) {
      return false;
    }
    const auto [eu, ev] = g.edge_endpoints(e);
    if (g.node_broken(eu) && !node_kept[static_cast<std::size_t>(eu)]) {
      return false;
    }
    if (g.node_broken(ev) && !node_kept[static_cast<std::size_t>(ev)]) {
      return false;
    }
    return true;
  };
  std::vector<char> usable(g.num_edges(), 0);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    usable[e] = edge_usable_now(static_cast<graph::EdgeId>(e)) ? 1 : 0;
  }
  auto refresh_element = [&](const Element& el) {
    if (el.is_node) {
      for (graph::EdgeId e :
           g.incident_edges(static_cast<graph::NodeId>(el.id))) {
        usable[static_cast<std::size_t>(e)] = edge_usable_now(e) ? 1 : 0;
      }
    } else {
      const auto e = static_cast<graph::EdgeId>(el.id);
      usable[static_cast<std::size_t>(e)] = edge_usable_now(e) ? 1 : 0;
    }
  };
  auto edge_ok = [&](graph::EdgeId e) {
    return usable[static_cast<std::size_t>(e)] != 0;
  };
  auto routable = [&]() {
    return mcf::is_routable(g, problem.demands, edge_ok, cap, options.lp);
  };

  // Only meaningful when the input already satisfies the demand; otherwise
  // dropping repairs can only make things worse.
  const bool baseline_routable = routable();
  core::RecoverySolution reduced = solution;
  if (baseline_routable) {
    // Candidates most-expensive-first; within ties, later repairs first
    // (they are more often redundant leftovers).
    std::vector<Element> elements;
    for (auto it = solution.repaired_edges.rbegin();
         it != solution.repaired_edges.rend(); ++it) {
      elements.push_back(Element{false, *it, g.edge_repair_cost(*it)});
    }
    for (auto it = solution.repaired_nodes.rbegin();
         it != solution.repaired_nodes.rend(); ++it) {
      elements.push_back(Element{true, *it, g.node_repair_cost(*it)});
    }
    std::stable_sort(elements.begin(), elements.end(),
                     [](const Element& a, const Element& b) {
                       return a.cost > b.cost;
                     });

    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      bool dropped = false;
      for (const Element& el : elements) {
        auto& flag = el.is_node ? node_kept[static_cast<std::size_t>(el.id)]
                                : edge_kept[static_cast<std::size_t>(el.id)];
        if (!flag) continue;
        flag = 0;
        refresh_element(el);
        if (routable()) {
          dropped = true;
        } else {
          flag = 1;  // needed after all
          refresh_element(el);
        }
      }
      if (!dropped) break;
    }

    reduced.repaired_nodes.clear();
    reduced.repaired_edges.clear();
    // Preserve the original repair order for the surviving elements.
    for (graph::NodeId n : solution.repaired_nodes) {
      if (node_kept[static_cast<std::size_t>(n)]) {
        reduced.repaired_nodes.push_back(n);
      }
    }
    for (graph::EdgeId e : solution.repaired_edges) {
      if (edge_kept[static_cast<std::size_t>(e)]) {
        reduced.repaired_edges.push_back(e);
      }
    }
  }

  reduced.algorithm = solution.algorithm + "+LS";
  core::score_solution(problem, reduced);
  reduced.wall_seconds = solution.wall_seconds + timer.elapsed_seconds();
  return reduced;
}

}  // namespace netrec::heuristics
