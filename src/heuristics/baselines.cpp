#include "heuristics/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "core/repair_state.hpp"
#include "graph/maxflow.hpp"
#include "graph/simple_paths.hpp"
#include "graph/view.hpp"
#include "mcf/routing.hpp"
#include "util/timer.hpp"

namespace netrec::heuristics {

namespace {
constexpr double kEps = 1e-9;

void finish(const core::RecoveryProblem& problem, core::RepairState& state,
            core::RecoverySolution& solution, const util::Timer& timer) {
  solution.repaired_nodes = state.repaired_nodes();
  solution.repaired_edges = state.repaired_edges();
  core::score_solution(problem, solution);
  solution.wall_seconds = timer.elapsed_seconds();
}

}  // namespace

core::RecoverySolution solve_all(const core::RecoveryProblem& problem) {
  util::Timer timer;
  core::RecoverySolution solution;
  solution.algorithm = "ALL";
  core::RepairState state(problem.graph);
  for (graph::NodeId n : problem.graph.broken_nodes()) state.repair_node(n);
  for (graph::EdgeId e : problem.graph.broken_edges()) state.repair_edge(e);
  finish(problem, state, solution, timer);
  return solution;
}

core::RecoverySolution solve_srt(const core::RecoveryProblem& problem,
                                 const mcf::PathLpOptions& lp) {
  (void)lp;
  util::Timer timer;
  core::RecoverySolution solution;
  solution.algorithm = "SRT";
  const graph::Graph& g = problem.graph;
  core::RepairState state(g);

  // Demands in decreasing order of flow requirement.
  std::vector<std::size_t> order(problem.demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return problem.demands[a].amount > problem.demands[b].amount;
  });

  // One full-graph snapshot (hop lengths, static capacities) serves every
  // demand's successive-shortest-path collection.
  const graph::GraphView view = graph::GraphView::build(g);
  for (std::size_t idx : order) {
    const mcf::Demand& d = problem.demands[idx];
    if (d.amount <= kEps || d.source == d.target) continue;
    // S_i: first shortest paths whose combined capacity covers d_i,
    // independently of other demands (full graph, static capacities).
    const auto set =
        graph::successive_shortest_paths(view, d.source, d.target, d.amount);
    for (const auto& path : set.paths) state.repair_path(path);
  }
  finish(problem, state, solution, timer);
  return solution;
}

namespace {

struct RankedPath {
  std::size_t demand;
  graph::Path path;
  double weight;
};

/// P(H,G) with the knapsack weights cost(p)/capacity(p); cost counts the
/// repair cost of broken elements on the path, capacity is the static
/// bottleneck.  Zero-cost (already working) paths sort first.
std::vector<RankedPath> build_path_pool(const core::RecoveryProblem& problem,
                                        const GreedyOptions& options) {
  const graph::Graph& g = problem.graph;
  graph::SimplePathLimits limits;
  limits.max_paths = options.max_paths_per_pair;
  limits.max_hops = options.max_hops;
  const auto cap = mcf::static_capacity(g);
  // The pool enumerates the *full* graph (broken elements included); one
  // snapshot serves every demand pair's DFS.
  const graph::GraphView view = graph::GraphView::build(g);

  std::vector<RankedPath> pool;
  for (std::size_t h = 0; h < problem.demands.size(); ++h) {
    const mcf::Demand& d = problem.demands[h];
    if (d.amount <= kEps || d.source == d.target) continue;
    for (auto& p : graph::all_simple_paths(view, d.source, d.target, limits)) {
      double cost = 0.0;
      std::vector<graph::NodeId> nodes = p.nodes(g);
      for (graph::NodeId n : nodes) {
        if (g.node_broken(n)) cost += g.node_repair_cost(n);
      }
      for (graph::EdgeId e : p.edges) {
        if (g.edge_broken(e)) cost += g.edge_repair_cost(e);
      }
      const double capacity = p.capacity(cap);
      if (capacity <= kEps) continue;
      pool.push_back(RankedPath{h, std::move(p), cost / capacity});
    }
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.weight < b.weight;
                   });
  return pool;
}

}  // namespace

core::RecoverySolution solve_grd_com(const core::RecoveryProblem& problem,
                                     const GreedyOptions& options) {
  util::Timer timer;
  core::RecoverySolution solution;
  solution.algorithm = "GRD-COM";
  const graph::Graph& g = problem.graph;
  core::RepairState state(g);

  auto pool = build_path_pool(problem, options);
  std::vector<double> remaining(problem.demands.size());
  for (std::size_t h = 0; h < problem.demands.size(); ++h) {
    remaining[h] = problem.demands[h].amount;
  }
  std::vector<double> residual(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    residual[e] = g.edge_capacity(static_cast<graph::EdgeId>(e));
  }
  auto residual_view = [&](graph::EdgeId e) {
    return residual[static_cast<std::size_t>(e)];
  };
  auto total_remaining = [&]() {
    return std::accumulate(remaining.begin(), remaining.end(), 0.0);
  };
  // Snapshot of the working-or-repaired subgraph; rebuilt after each repair
  // (state changes only there), while the residual capacities mutate freely
  // between the per-demand flow calls.
  graph::ViewConfig working_config;
  working_config.edge_ok = [&state](graph::EdgeId e) {
    return state.edge_ok(e);
  };
  graph::GraphView working_view = graph::GraphView::build(g, working_config);
  // Routes as much of demand k as possible on the current repaired network.
  auto route_max = [&](std::size_t k) {
    if (remaining[k] <= kEps) return;
    const mcf::Demand& d = problem.demands[k];
    const auto flow =
        graph::max_flow(working_view, d.source, d.target, residual);
    double assign = std::min(flow.value, remaining[k]);
    if (assign <= kEps) return;
    for (auto& [path, amount] :
         graph::decompose_flow(g, d.source, d.target, flow.edge_flow)) {
      if (assign <= kEps) break;
      const double take = std::min(amount, assign);
      for (graph::EdgeId e : path.edges) {
        residual[static_cast<std::size_t>(e)] =
            std::max(0.0, residual[static_cast<std::size_t>(e)] - take);
      }
      remaining[k] -= take;
      assign -= take;
    }
  };

  for (const RankedPath& ranked : pool) {
    if (total_remaining() <= kEps) break;
    if (remaining[ranked.demand] <= kEps) continue;
    // Repair the path, then commit the demand it was enumerated for.
    state.repair_path(ranked.path);
    working_view = graph::GraphView::build(g, working_config);
    const double capacity = ranked.path.capacity(residual_view);
    const double assign = std::min(remaining[ranked.demand], capacity);
    if (assign > kEps) {
      for (graph::EdgeId e : ranked.path.edges) {
        residual[static_cast<std::size_t>(e)] -= assign;
      }
      remaining[ranked.demand] -= assign;
    }
    // Opportunistically route every other demand on the repaired network.
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      if (k != ranked.demand) route_max(k);
    }
  }
  finish(problem, state, solution, timer);
  return solution;
}

core::RecoverySolution solve_grd_nc(const core::RecoveryProblem& problem,
                                    const GreedyOptions& options) {
  util::Timer timer;
  core::RecoverySolution solution;
  solution.algorithm = "GRD-NC";
  const graph::Graph& g = problem.graph;
  core::RepairState state(g);

  auto pool = build_path_pool(problem, options);
  const auto cap = mcf::static_capacity(g);
  // Paths that change nothing (no new repairs) cannot change the routability
  // verdict, so the exact test only runs after an effective repair; that
  // bounds LP calls by the number of broken elements, not the pool size.
  auto adds_repair = [&](const graph::Path& p) {
    for (graph::EdgeId e : p.edges) {
      if (g.edge_broken(e) && !state.edge_repaired(e)) return true;
    }
    for (graph::NodeId n : p.nodes(g)) {
      if (g.node_broken(n) && !state.node_repaired(n)) return true;
    }
    return false;
  };
  bool routable =
      mcf::is_routable(g, problem.demands, state.edge_filter(), cap,
                       options.lp);
  for (const RankedPath& ranked : pool) {
    if (routable) break;
    if (!adds_repair(ranked.path)) continue;
    state.repair_path(ranked.path);
    routable = mcf::is_routable(g, problem.demands, state.edge_filter(), cap,
                                options.lp);
  }
  finish(problem, state, solution, timer);
  return solution;
}

}  // namespace netrec::heuristics
