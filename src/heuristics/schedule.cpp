#include "heuristics/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "core/repair_state.hpp"
#include "graph/dijkstra.hpp"
#include "graph/view_cache.hpp"
#include "mcf/routing.hpp"
#include "util/stats.hpp"

namespace netrec::heuristics {

double RecoverySchedule::restoration_auc() const {
  return util::restoration_auc(restored_series(), total_demand);
}

std::size_t RecoverySchedule::steps_to_restore(double fraction) const {
  return util::steps_to_fraction(restored_series(), total_demand, fraction);
}

std::vector<double> RecoverySchedule::restored_series() const {
  std::vector<double> series;
  series.reserve(steps.size());
  for (const ScheduleStep& step : steps) series.push_back(step.restored_after);
  return series;
}

std::string node_label(const graph::Graph& g, graph::NodeId n) {
  return "site " + (g.node_name(n).empty() ? std::to_string(n)
                                           : std::string(g.node_name(n)));
}

std::string edge_label(const graph::Graph& g, graph::EdgeId e) {
  const auto [eu, ev] = g.edge_endpoints(e);
  auto name = [&](graph::NodeId n) {
    return g.node_name(n).empty() ? std::to_string(n)
                                  : std::string(g.node_name(n));
  };
  return "link " + name(eu) + " - " + name(ev);
}

RecoverySchedule schedule_repairs(const core::RecoveryProblem& problem,
                                  const core::RecoverySolution& solution,
                                  const ScheduleOptions& options) {
  const graph::Graph& g = problem.graph;
  RecoverySchedule schedule;
  schedule.total_demand = problem.total_demand();

  // Membership of the repair set, and what has been scheduled so far.
  std::vector<char> node_in_set(g.num_nodes(), 0);
  std::vector<char> edge_in_set(g.num_edges(), 0);
  for (graph::NodeId n : solution.repaired_nodes) {
    node_in_set[static_cast<std::size_t>(n)] = 1;
  }
  for (graph::EdgeId e : solution.repaired_edges) {
    edge_in_set[static_cast<std::size_t>(e)] = 1;
  }
  core::RepairState scheduled(g);
  std::size_t remaining = solution.total_repairs();

  // Elements of the final (solution) subgraph: working plus the repair set.
  auto node_available = [&](graph::NodeId n) {
    return !g.node_broken(n) || node_in_set[static_cast<std::size_t>(n)];
  };
  auto edge_available = [&](graph::EdgeId e) {
    if (g.edge_broken(e) && !edge_in_set[static_cast<std::size_t>(e)]) {
      return false;
    }
    const auto [eu, ev] = g.edge_endpoints(e);
    return node_available(eu) && node_available(ev);
  };
  // Length = unscheduled repair work on the edge (edge + endpoint halves),
  // with a small hop term so fully-scheduled paths still rank shortest.
  auto pending_length = [&](graph::EdgeId e) {
    const auto [eu, ev] = g.edge_endpoints(e);
    double w = 1e-3;
    if (g.edge_broken(e) && !scheduled.edge_repaired(e)) w += 1.0;
    if (g.node_broken(eu) && !scheduled.node_repaired(eu)) w += 0.5;
    if (g.node_broken(ev) && !scheduled.node_repaired(ev)) w += 0.5;
    return w;
  };

  // Two cached snapshots survive the whole schedule instead of one build
  // per greedy/dijkstra call.  `available` has a schedule-independent
  // filter, so every emit is a pending-length *refresh* of the repaired
  // element's incident arcs; `scheduled` membership grows with each emit
  // and rebuilds — both driven by the RepairState publishing into the
  // cache.
  graph::ViewCache cache(g);
  graph::ViewConfig available_config;
  available_config.edge_ok = edge_available;
  available_config.length = pending_length;
  const auto available_slot =
      cache.add_config("available", std::move(available_config));
  graph::ViewConfig scheduled_config;
  scheduled_config.edge_ok = [&](graph::EdgeId e) {
    return scheduled.edge_ok(e);
  };
  const auto scheduled_slot =
      cache.add_config("scheduled", std::move(scheduled_config));
  scheduled.publish_to(&cache);

  auto restored_now = [&]() {
    if (options.exact_scoring) {
      return mcf::max_routed_flow(cache.view(scheduled_slot),
                                  problem.demands, options.lp)
          .total_routed;
    }
    return mcf::greedy_route(cache.view(scheduled_slot), problem.demands)
        .total_routed;
  };

  auto emit = [&](bool is_node, graph::NodeId n, graph::EdgeId e) {
    const bool changed =
        is_node ? scheduled.repair_node(n) : scheduled.repair_edge(e);
    if (!changed) return;
    --remaining;
    ScheduleStep step;
    step.is_node = is_node;
    step.node = n;
    step.edge = e;
    step.label = is_node ? node_label(g, n) : edge_label(g, e);
    step.restored_after = restored_now();
    schedule.steps.push_back(std::move(step));
  };

  // Route-oriented greedy: repeatedly complete the route with the best
  // demand-per-remaining-repair ratio, so service restoration front-loads.
  std::size_t guard = 0;
  while (remaining > 0 && guard++ < solution.total_repairs() + 8) {
    const auto routed =
        mcf::greedy_route(cache.view(scheduled_slot), problem.demands);
    // Pick the most valuable unsatisfied demand per unit of pending work.
    int best_demand = -1;
    double best_ratio = -1.0;
    graph::Path best_path;
    const graph::GraphView& available = cache.view(available_slot);
    for (std::size_t h = 0; h < problem.demands.size(); ++h) {
      const auto& d = problem.demands[h];
      const double deficit = d.amount - routed.routed[h];
      if (deficit <= 1e-9 || d.source == d.target) continue;
      auto path = graph::shortest_path(available, d.source, d.target);
      if (!path) continue;
      const double pending = path->length(pending_length);
      const double ratio = deficit / (1.0 + pending);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_demand = static_cast<int>(h);
        best_path = std::move(*path);
      }
    }
    if (best_demand < 0) break;  // every demand satisfied or unreachable

    // Schedule the chosen route's pending elements in travel order.
    graph::NodeId at = best_path.start;
    emit(true, at, graph::kInvalidEdge);
    for (graph::EdgeId e : best_path.edges) {
      emit(false, graph::kInvalidNode, e);
      at = g.other_endpoint(e, at);
      emit(true, at, graph::kInvalidEdge);
    }
  }

  // Leftovers (capacity relief repairs not on any single route): cheapest
  // first, then original order.
  struct Leftover {
    bool is_node;
    int id;
    double cost;
  };
  std::vector<Leftover> leftovers;
  for (graph::NodeId n : solution.repaired_nodes) {
    if (!scheduled.node_repaired(n)) {
      leftovers.push_back({true, n, g.node_repair_cost(n)});
    }
  }
  for (graph::EdgeId e : solution.repaired_edges) {
    if (!scheduled.edge_repaired(e)) {
      leftovers.push_back({false, e, g.edge_repair_cost(e)});
    }
  }
  std::stable_sort(leftovers.begin(), leftovers.end(),
                   [](const Leftover& a, const Leftover& b) {
                     return a.cost < b.cost;
                   });
  for (const Leftover& l : leftovers) {
    if (l.is_node) {
      emit(true, static_cast<graph::NodeId>(l.id), graph::kInvalidEdge);
    } else {
      emit(false, graph::kInvalidNode, static_cast<graph::EdgeId>(l.id));
    }
  }

  // The final point is always scored exactly, so the schedule's endpoint
  // agrees with the solution's referee satisfaction.
  if (!schedule.steps.empty()) {
    schedule.steps.back().restored_after =
        mcf::max_routed_flow(cache.view(scheduled_slot), problem.demands,
                             options.lp)
            .total_routed;
  }
  return schedule;
}

}  // namespace netrec::heuristics
