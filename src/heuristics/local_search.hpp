// Redundant-repair elimination.
//
// Given any feasible repair set, repeatedly drop elements whose removal
// keeps the demand routable (most expensive first, newest first on ties).
// Polynomial (one routability test per candidate per pass) and never hurts:
// used to tighten ISP's output into the incumbent that seeds OPT's
// branch-and-bound, and as the final polish on every OPT result.
#pragma once

#include "core/problem.hpp"
#include "mcf/path_lp.hpp"

namespace netrec::heuristics {

struct LocalSearchOptions {
  std::size_t max_passes = 3;
  mcf::PathLpOptions lp;
};

/// Returns a solution whose repair set is a (weak) subset of the input's,
/// rescored; the algorithm label gains a "+LS" suffix.
core::RecoverySolution reduce_repairs(const core::RecoveryProblem& problem,
                                      const core::RecoverySolution& solution,
                                      const LocalSearchOptions& options = {});

}  // namespace netrec::heuristics
