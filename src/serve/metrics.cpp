#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace netrec::serve {

LatencyWindow::LatencyWindow(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void LatencyWindow::add(double seconds) {
  ring_[next_] = seconds;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
}

double LatencyWindow::percentile(double q) const {
  if (filled_ == 0) return 0.0;
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<long>(filled_));
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: the smallest sample with at least q of the mass below it.
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(filled_)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double LatencyWindow::mean() const {
  if (filled_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) sum += ring_[i];
  return sum / static_cast<double>(filled_);
}

MetricsRegistry::MetricsRegistry(std::size_t window_capacity)
    : window_capacity_(window_capacity) {}

void MetricsRegistry::record(const std::string& endpoint, double seconds,
                             bool error, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(endpoint);
  if (it == entries_.end()) {
    it = entries_.emplace(endpoint, Entry(window_capacity_)).first;
  }
  Entry& entry = it->second;
  ++entry.requests;
  if (error) ++entry.errors;
  if (cache_hit) ++entry.cache_hits;
  entry.window.add(seconds);
}

util::Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json out = util::Json::object();
  for (const auto& [endpoint, entry] : entries_) {
    util::Json stats = util::Json::object();
    stats.set("requests", entry.requests);
    stats.set("errors", entry.errors);
    stats.set("cache_hits", entry.cache_hits);
    stats.set("cache_hit_rate",
              entry.requests == 0
                  ? 0.0
                  : static_cast<double>(entry.cache_hits) /
                        static_cast<double>(entry.requests));
    stats.set("window_samples", entry.window.count());
    util::Json latency = util::Json::object();
    latency.set("mean", entry.window.mean() * 1e3);
    latency.set("p50", entry.window.percentile(0.5) * 1e3);
    latency.set("p99", entry.window.percentile(0.99) * 1e3);
    stats.set("latency_ms", std::move(latency));
    out.set(endpoint, std::move(stats));
  }
  return out;
}

}  // namespace netrec::serve
