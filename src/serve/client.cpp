#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

namespace netrec::serve {

namespace {

/// Parses a Retry-After header value in seconds; returns < 0 when absent
/// or malformed (HTTP-date forms are not supported — netrecd only emits
/// delta-seconds).
double retry_after_seconds(const HttpResponse& response) {
  const auto it = response.headers.find("retry-after");
  if (it == response.headers.end()) return -1.0;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size() || value < 0.0) return -1.0;
    return value;
  } catch (const std::exception&) {
    return -1.0;
  }
}

}  // namespace

Client::Client(std::string host, int port, ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      opt_(options),
      rng_(options.jitter_seed) {}

double Client::backoff_ms(int retry_index, const HttpResponse* last) {
  if (last != nullptr && last->status == 503) {
    const double advertised = retry_after_seconds(*last) * 1e3;
    if (advertised >= 0.0) {
      return std::min(advertised, opt_.retry_after_cap_ms);
    }
  }
  const double base =
      std::min(opt_.initial_backoff_ms *
                   std::pow(opt_.backoff_multiplier, retry_index),
               opt_.max_backoff_ms);
  // Jitter in [0.5, 1.0) of the base: desynchronises a fleet of retrying
  // clients without ever retrying sooner than half the nominal backoff.
  return base * (0.5 + 0.5 * rng_.uniform());
}

ClientResult Client::request(const std::string& method,
                             const std::string& target,
                             const std::string& body) {
  ClientResult result;
  for (int attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    bool transport_failed = false;
    ++result.attempts;
    try {
      result.response = http_fetch(host_, port_, method, target, body);
      result.error.clear();
    } catch (const std::exception& e) {
      transport_failed = true;
      result.error = e.what();
      result.response = HttpResponse{};
    }
    const bool retryable = transport_failed || result.response.status == 503;
    if (!retryable) return result;
    ++result.transient_errors;
    if (attempt + 1 >= opt_.max_attempts) break;
    const double sleep_ms = backoff_ms(
        attempt, transport_failed ? nullptr : &result.response);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::max(0.0, sleep_ms)));
  }
  return result;
}

}  // namespace netrec::serve
