#include "serve/plan_cache.hpp"

#include <utility>

#include "util/fault.hpp"

namespace netrec::serve {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const std::string> PlanCache::find(const std::string& key) {
  // Injected cache faults are fail-open: a forced miss (or a dropped
  // insert below) costs a redundant solve, never correctness — determinism
  // makes the fresh payload bit-identical to the lost cached one.
  if (FAULT_POINT("serve.cache.find")) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.payload;
}

void PlanCache::insert(const std::string& key, std::string payload) {
  if (capacity_ == 0) return;
  if (FAULT_POINT("serve.cache.insert")) return;  // dropped insert
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.payload =
        std::make_shared<const std::string>(std::move(payload));
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key,
                   Entry{std::make_shared<const std::string>(
                             std::move(payload)),
                         lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace netrec::serve
