// netrecd core: recovery planning as a long-running service.
//
// One Server owns a listening socket and a pool of worker threads; each
// worker owns a warm serve::PlanningEngine (private problem copy + private
// intra-solve ThreadPool), accepts connections directly off the shared
// listener and serves one request per connection.  Re-entrancy therefore
// holds by isolation: no request ever shares solver state with another,
// and the only cross-worker structures — the plan cache and the metrics
// registry — are internally locked.
//
// Endpoints (request/response schemas in docs/serve_protocol.md):
//   GET  /v1/health    liveness + topology summary
//   GET  /v1/topology  preloaded problem description
//   POST /v1/plan      damage state in -> repair plan + restoration out
//   GET  /v1/metrics   per-endpoint windowed metrics + plan-cache stats
//   POST /v1/shutdown  clean stop (optional; netrecd enables it)
//
// /v1/plan responses are {"result": <payload>, "meta": {fingerprint,
// cached, latency_ms}}: the payload bytes come either from a fresh
// PlanningEngine solve or verbatim from the plan cache, so a cache hit is
// bit-identical to a fresh solve by construction (the meta object carries
// everything request-specific).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/problem.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"
#include "serve/plan_cache.hpp"

namespace netrec::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (query with port() after start()).
  int port = 0;
  /// Worker threads == concurrently served requests == warm engines.
  std::size_t workers = 4;
  /// Plan-cache entry cap; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Latency samples kept per endpoint for the windowed percentiles.
  std::size_t metrics_window = 4096;
  /// Per-worker engine configuration (intra-solve threads, ISP options).
  EngineOptions engine;
  /// Allow POST /v1/shutdown (netrecd turns this on; embedded test servers
  /// usually stop via stop()).
  bool enable_shutdown_endpoint = true;
  /// Per-connection receive timeout.
  int receive_timeout_seconds = 30;
};

class Server {
 public:
  /// Copies the baseline problem; see EngineOptions for damage semantics.
  Server(core::RecoveryProblem baseline, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the workers; throws std::runtime_error on
  /// bind failure.  Call at most once.
  void start();

  /// Signals wait() to return (used by the shutdown endpoint and signal
  /// handlers); does not join workers.  Safe from any thread.
  void request_stop();

  /// Blocks until request_stop() (or the shutdown endpoint) fires.
  void wait();

  /// Closes the listener and joins all workers; idempotent.  Must not be
  /// called from a worker thread (the shutdown endpoint uses
  /// request_stop() + the owner's stop()).
  void stop();

  /// Bound port (resolves ephemeral binds); valid after start().
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  const core::RecoveryProblem& baseline() const { return baseline_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  void worker_loop(std::size_t worker_index);
  void handle_connection(int fd, PlanningEngine& engine);
  /// Routes one parsed request; returns {status, body}.
  std::pair<int, std::string> route(const HttpRequest& request,
                                    PlanningEngine& engine, bool& cache_hit);
  std::string handle_plan(const std::string& body, PlanningEngine& engine,
                          bool& cache_hit, double start_seconds);

  core::RecoveryProblem baseline_;
  ServerOptions opt_;
  PlanCache cache_;
  MetricsRegistry metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace netrec::serve
