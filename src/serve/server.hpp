// netrecd core: recovery planning as a long-running service.
//
// One Server owns a listening socket, an acceptor thread, a bounded
// connection queue and a pool of worker threads; each worker owns a warm
// serve::PlanningEngine (private problem copy + private intra-solve
// ThreadPool) and serves one request per connection popped off the queue.
// Re-entrancy therefore holds by isolation: no request ever shares solver
// state with another, and the only cross-worker structures — the plan
// cache, the metrics registry and the queue itself — are internally locked.
//
// Robustness layer (PR 9):
//   * Admission control: the acceptor sheds connections with 503 +
//     Retry-After once the queue is `queue_budget` deep (all workers busy
//     and a backlog building), instead of letting latency grow unbounded.
//   * Self-healing workers: a supervisor thread joins any worker killed by
//     a crash escaping the request path (e.g. the "engine.solve" injected
//     crash) and respawns it with a fresh warm engine; restarts are counted
//     in /v1/metrics.
//   * Graceful degradation: with EngineOptions::deadline_ms set, a solve
//     that blows its budget returns the heuristic fallback plan tagged
//     "degraded": true in meta (never cached) instead of hanging a worker.
//   * Bounded-grace stop(): queued-but-unserved connections are flushed
//     with 503, in-flight requests get `shutdown_grace_seconds` to finish,
//     then their sockets are force-shut so a stalled peer cannot wedge
//     shutdown.
//
// Endpoints (request/response schemas in docs/serve_protocol.md):
//   GET  /v1/health    liveness + topology summary
//   GET  /v1/topology  preloaded problem description
//   POST /v1/plan      damage state in -> repair plan + restoration out
//   GET  /v1/metrics   per-endpoint windowed metrics + cache/server stats
//   POST /v1/shutdown  clean stop (optional; netrecd enables it)
//
// /v1/plan responses are {"result": <payload>, "meta": {fingerprint,
// cached, degraded, latency_ms}}: the payload bytes come either from a
// fresh PlanningEngine solve or verbatim from the plan cache, so a cache
// hit is bit-identical to a fresh solve by construction (the meta object
// carries everything request-specific).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/problem.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/metrics.hpp"
#include "serve/plan_cache.hpp"

namespace netrec::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (query with port() after start()).
  int port = 0;
  /// Worker threads == concurrently served requests == warm engines.
  std::size_t workers = 4;
  /// Plan-cache entry cap; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Latency samples kept per endpoint for the windowed percentiles.
  std::size_t metrics_window = 4096;
  /// Per-worker engine configuration (intra-solve threads, ISP options,
  /// the per-request solve deadline).
  EngineOptions engine;
  /// Allow POST /v1/shutdown (netrecd turns this on; embedded test servers
  /// usually stop via stop()).
  bool enable_shutdown_endpoint = true;
  /// Per-connection receive/send timeouts (a stalled reader must not be
  /// able to block a worker in send_all forever).
  int receive_timeout_seconds = 30;
  int send_timeout_seconds = 30;
  /// Admission control: accepted connections queued beyond this depth are
  /// shed with 503 + Retry-After.  0 = auto (2x workers).
  std::size_t queue_budget = 0;
  /// Retry-After value (seconds) advertised on shed/overload 503s.
  int retry_after_seconds = 1;
  /// stop() under load: how long in-flight requests may keep running
  /// before their sockets are force-shut.
  double shutdown_grace_seconds = 5.0;
};

class Server {
 public:
  /// Copies the baseline problem; see EngineOptions for damage semantics.
  Server(core::RecoveryProblem baseline, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns acceptor + workers + supervisor; throws
  /// std::runtime_error on bind failure.  Call at most once.
  void start();

  /// Signals wait() to return (used by the shutdown endpoint and signal
  /// handlers); does not join workers.  Safe from any thread.
  void request_stop();

  /// Blocks until request_stop() (or the shutdown endpoint) fires.
  void wait();

  /// Stops accepting, flushes the queue with 503s, grants in-flight
  /// requests a bounded grace period, then force-shuts their sockets and
  /// joins everything; idempotent.  Must not be called from a worker
  /// thread (the shutdown endpoint uses request_stop() + the owner's
  /// stop()).
  void stop();

  /// Bound port (resolves ephemeral binds); valid after start().
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  const core::RecoveryProblem& baseline() const { return baseline_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }

  /// Robustness counters (also exposed under "server" in /v1/metrics).
  std::uint64_t worker_restarts() const { return worker_restarts_.load(); }
  std::uint64_t shed_total() const { return shed_total_.load(); }
  std::uint64_t degraded_total() const { return degraded_total_.load(); }

 private:
  /// One worker: the thread plus its supervision state.  `active_fd` is
  /// the connection currently being served (-1 idle) — stop() force-shuts
  /// it after the grace period; `dead` flags a crash for the supervisor.
  /// Both are guarded by queue_mutex_.
  struct WorkerSlot {
    std::thread thread;
    int active_fd = -1;
    bool dead = false;
  };

  void acceptor_loop();
  void worker_loop(std::size_t worker_index);
  void supervisor_loop();
  void handle_connection(int fd, PlanningEngine& engine);
  /// Routes one parsed request; returns {status, body}.
  std::pair<int, std::string> route(const HttpRequest& request,
                                    PlanningEngine& engine, bool& cache_hit);
  std::string handle_plan(const std::string& body, PlanningEngine& engine,
                          bool& cache_hit, double start_seconds);
  /// Writes a 503 + Retry-After and closes the fd (shed / shutdown flush).
  void refuse_connection(int fd);
  std::size_t queue_budget() const;

  core::RecoveryProblem baseline_;
  ServerOptions opt_;
  PlanCache cache_;
  MetricsRegistry metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::thread supervisor_;
  std::vector<WorkerSlot> slots_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Connection queue + worker supervision state (one mutex: the pieces
  /// are touched together on every transition).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;       // workers: queue non-empty/stop
  std::condition_variable supervisor_cv_;  // supervisor: worker died/stop
  std::condition_variable drained_cv_;     // stop(): all workers idle
  std::deque<int> conn_queue_;

  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> degraded_total_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace netrec::serve
