// PlanCache — LRU cache of serialised plan payloads keyed by the canonical
// damage-state fingerprint (serve::canonical_key).
//
// Values are the exact payload bytes a fresh solve produced (the engine's
// payload is a pure function of the request, see engine.hpp), so a hit IS
// bit-identical to a re-solve by construction — the cache stores dumps, not
// re-serialisable objects, to make that property structural.  Payloads are
// handed out as shared_ptr so eviction never invalidates a response that is
// still being written to a socket.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace netrec::serve {

class PlanCache {
 public:
  /// `capacity` is the entry cap; 0 disables the cache (find always misses,
  /// insert is a no-op).
  explicit PlanCache(std::size_t capacity);

  /// Returns the cached payload and touches the entry, or nullptr.
  std::shared_ptr<const std::string> find(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry beyond capacity.  Concurrent solves of the same key may both
  /// insert; the payloads are identical by determinism, so last-wins is
  /// harmless.
  void insert(const std::string& key, std::string payload);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> payload;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace netrec::serve
