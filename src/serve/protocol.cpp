#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace netrec::serve {

namespace {

[[noreturn]] void bad_request(const std::string& why) {
  throw std::invalid_argument(why);
}

/// Non-negative integer field; JSON numbers are doubles, so integrality and
/// the 2^53 exact-representation ceiling are both checked.
std::uint64_t require_uint(const util::Json& value, const char* field,
                           std::uint64_t max_value) {
  if (value.type() != util::Json::Type::kNumber) {
    bad_request(std::string(field) + " must be a number");
  }
  const double d = value.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d >= 9007199254740992.0) {
    bad_request(std::string(field) + " must be a non-negative integer");
  }
  const auto out = static_cast<std::uint64_t>(d);
  if (out > max_value) {
    bad_request(std::string(field) + " out of range (max " +
                std::to_string(max_value) + ")");
  }
  return out;
}

/// Sorted, deduplicated id list; every id must reference an element of the
/// preloaded topology.
template <class Id>
std::vector<Id> parse_id_list(const util::Json& value, const char* field,
                              std::size_t element_count) {
  if (value.type() != util::Json::Type::kArray) {
    bad_request(std::string(field) + " must be an array of ids");
  }
  std::vector<Id> ids;
  ids.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    const std::uint64_t id = require_uint(value.at(i), field,
                                          element_count == 0
                                              ? 0
                                              : element_count - 1);
    if (element_count == 0) {
      bad_request(std::string(field) + ": topology has no such elements");
    }
    ids.push_back(static_cast<Id>(id));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void append_ids(std::string& out, const std::vector<std::int32_t>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
}

}  // namespace

const char* mode_name(PlanRequest::Mode mode) {
  return mode == PlanRequest::Mode::kIsp ? "isp" : "timeline";
}

const char* policy_name(PlanRequest::Policy policy) {
  return policy == PlanRequest::Policy::kReplay ? "replay" : "replan";
}

PlanRequest parse_plan_request(const util::Json& body,
                               const core::RecoveryProblem& baseline) {
  if (body.type() != util::Json::Type::kObject) {
    bad_request("request body must be a JSON object");
  }
  // Unknown keys are errors: a typo'd "broken_node" silently planning
  // against an undamaged network is exactly the failure mode strict
  // parsing exists to prevent.
  static const char* const kKnown[] = {"broken_nodes", "broken_edges",
                                       "mode",         "policy",
                                       "stage_budget", "max_stages",
                                       "seed"};
  for (const std::string& key : body.keys()) {
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) bad_request("unknown request field '" + key + "'");
  }

  PlanRequest request;
  const std::size_t num_nodes = baseline.graph.num_nodes();
  const std::size_t num_edges = baseline.graph.num_edges();
  if (body.contains("broken_nodes")) {
    request.broken_nodes = parse_id_list<graph::NodeId>(
        body.at("broken_nodes"), "broken_nodes", num_nodes);
  }
  if (body.contains("broken_edges")) {
    request.broken_edges = parse_id_list<graph::EdgeId>(
        body.at("broken_edges"), "broken_edges", num_edges);
  }
  if (body.contains("mode")) {
    const util::Json& mode = body.at("mode");
    if (mode.type() != util::Json::Type::kString) {
      bad_request("mode must be a string");
    }
    if (mode.as_string() == "isp") {
      request.mode = PlanRequest::Mode::kIsp;
    } else if (mode.as_string() == "timeline") {
      request.mode = PlanRequest::Mode::kTimeline;
    } else {
      bad_request("mode must be 'isp' or 'timeline', got '" +
                  mode.as_string() + "'");
    }
  }
  if (body.contains("policy")) {
    const util::Json& policy = body.at("policy");
    if (policy.type() != util::Json::Type::kString) {
      bad_request("policy must be a string");
    }
    if (policy.as_string() == "replay") {
      request.policy = PlanRequest::Policy::kReplay;
    } else if (policy.as_string() == "replan") {
      request.policy = PlanRequest::Policy::kReplan;
    } else {
      bad_request("policy must be 'replay' or 'replan', got '" +
                  policy.as_string() + "'");
    }
  }
  if (body.contains("stage_budget")) {
    request.stage_budget = static_cast<std::size_t>(
        require_uint(body.at("stage_budget"), "stage_budget", 1u << 20));
  }
  if (body.contains("max_stages")) {
    request.max_stages = static_cast<std::size_t>(
        require_uint(body.at("max_stages"), "max_stages", 4096));
    if (request.max_stages == 0) bad_request("max_stages must be >= 1");
  }
  if (body.contains("seed")) {
    request.seed = require_uint(body.at("seed"), "seed",
                                9007199254740991ULL);
  }
  return request;
}

std::string canonical_key(const PlanRequest& request) {
  std::string key = "v1|mode=";
  key += mode_name(request.mode);
  if (request.mode == PlanRequest::Mode::kTimeline) {
    // Timeline-only options join the key only when they affect the solve;
    // in kIsp mode two requests differing only in, say, the seed must share
    // one cache entry.
    key += "|policy=";
    key += policy_name(request.policy);
    key += "|budget=" + std::to_string(request.stage_budget);
    key += "|stages=" + std::to_string(request.max_stages);
    key += "|seed=" + std::to_string(request.seed);
  }
  key += "|n=";
  append_ids(key, request.broken_nodes);
  key += "|e=";
  append_ids(key, request.broken_edges);
  return key;
}

std::string fingerprint(const PlanRequest& request) {
  const std::string key = canonical_key(request);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

}  // namespace netrec::serve
