#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "serve/http.hpp"
#include "serve/protocol.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace netrec::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string error_body(const std::string& message) {
  util::Json body = util::Json::object();
  body.set("error", message);
  return body.dump();
}

/// Formats latency with fixed precision so response bytes stay compact.
std::string format_latency_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

void set_socket_timeout(int fd, int option, int seconds) {
  timeval timeout{};
  timeout.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, option, &timeout, sizeof(timeout));
}

util::Json describe_problem(const core::RecoveryProblem& problem) {
  util::Json out = util::Json::object();
  out.set("nodes", problem.graph.num_nodes());
  out.set("edges", problem.graph.num_edges());
  out.set("demands", problem.demands.size());
  out.set("total_demand", problem.total_demand());
  out.set("total_repair_cost_if_all_broken", [&] {
    double total = 0.0;
    for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
      total += problem.graph.node_repair_cost(static_cast<graph::NodeId>(n));
    }
    for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
      total += problem.graph.edge_repair_cost(static_cast<graph::EdgeId>(e));
    }
    return total;
  }());
  return out;
}

}  // namespace

Server::Server(core::RecoveryProblem baseline, ServerOptions options)
    : baseline_(std::move(baseline)),
      opt_(std::move(options)),
      cache_(opt_.cache_capacity),
      metrics_(opt_.metrics_window) {
  if (opt_.workers == 0) {
    throw std::invalid_argument("Server: workers must be >= 1");
  }
}

Server::~Server() { stop(); }

std::size_t Server::queue_budget() const {
  return opt_.queue_budget > 0 ? opt_.queue_budget : 2 * opt_.workers;
}

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("Server::start called twice");
  }
  stopping_.store(false);
  listen_fd_ = listen_on(opt_.bind_address, opt_.port);
  port_ = bound_port(listen_fd_);
  slots_ = std::vector<WorkerSlot>(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    slots_[i].thread = std::thread([this, i] { worker_loop(i); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  NETREC_LOG(kInfo) << "netrecd listening on " << opt_.bind_address << ":"
                    << port_ << " (" << opt_.workers << " workers, queue "
                    << queue_budget() << ")";
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::stop() {
  if (!running_.load()) return;
  if (!stopping_.exchange(true)) {
    // Unblock the acceptor: shutdown makes pending and future accepts fail
    // immediately; close releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Flush queued-but-unserved connections with 503 + Retry-After (their
  // clients retry against the next instance) and wake every worker.
  std::deque<int> flush;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    flush.swap(conn_queue_);
  }
  queue_cv_.notify_all();
  for (int fd : flush) {
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    refuse_connection(fd);
  }

  // Bounded grace: in-flight requests may finish normally; past the grace
  // their sockets are force-shut so a stalled peer cannot wedge the joins
  // below (blocked recv/send return immediately after shutdown()).
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    const auto all_idle = [this] {
      for (const WorkerSlot& slot : slots_) {
        if (slot.active_fd >= 0) return false;
      }
      return true;
    };
    if (!drained_cv_.wait_for(
            lock, std::chrono::duration<double>(opt_.shutdown_grace_seconds),
            all_idle)) {
      NETREC_LOG(kWarn) << "serve: shutdown grace expired; force-closing "
                           "in-flight connections";
      for (WorkerSlot& slot : slots_) {
        if (slot.active_fd >= 0) ::shutdown(slot.active_fd, SHUT_RDWR);
      }
    }
  }

  // Supervisor first: it joins crashed workers and only exits once no
  // worker is marked dead, so the loop below never joins a thread the
  // supervisor is also joining.
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  for (WorkerSlot& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  slots_.clear();
  listen_fd_ = -1;
  running_.store(false);
  request_stop();  // release wait()-ers even when stop() came first
}

void Server::acceptor_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) break;
      // Transient accept failures (ECONNABORTED, EMFILE...) should not
      // kill the acceptor; anything persistent will just spin back here.
      continue;
    }
    set_socket_timeout(fd, SO_RCVTIMEO, opt_.receive_timeout_seconds);
    // SO_SNDTIMEO too: without it a stalled reader blocks send_all in the
    // worker forever.
    set_socket_timeout(fd, SO_SNDTIMEO, opt_.send_timeout_seconds);
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_.load() || conn_queue_.size() >= queue_budget()) {
        shed = true;
      } else {
        conn_queue_.push_back(fd);
      }
    }
    if (shed) {
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      refuse_connection(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void Server::refuse_connection(int fd) {
  write_http_response(
      fd, 503, "application/json",
      error_body("server overloaded; retry later"),
      {{"Retry-After", std::to_string(opt_.retry_after_seconds)}});
  // The request bytes were never read; closing now would RST the socket
  // and could discard the 503 before the client saw it.  Half-close and
  // briefly drain until the client (who reads to EOF) hangs up.
  set_socket_timeout(fd, SO_RCVTIMEO, 1);
  ::shutdown(fd, SHUT_WR);
  char sink[4096];
  std::size_t drained = 0;
  while (drained < 16 * 1024) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0) break;
    drained += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

void Server::worker_loop(std::size_t worker_index) {
  try {
    // Each worker owns a warm engine for its whole lifetime: the expensive
    // problem copy and thread-pool spin-up happen once, not per request —
    // and a respawned worker gets a fresh one, untouched by the crash.
    PlanningEngine engine(baseline_, opt_.engine);
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        queue_cv_.wait(lock, [this] {
          return stopping_.load() || !conn_queue_.empty();
        });
        if (conn_queue_.empty()) break;  // stopping_ and drained
        fd = conn_queue_.front();
        conn_queue_.pop_front();
        slots_[worker_index].active_fd = fd;
      }
      try {
        handle_connection(fd, engine);
      } catch (const std::exception& e) {
        NETREC_LOG(kWarn) << "serve: dropping connection: " << e.what();
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ::close(slots_[worker_index].active_fd);
        slots_[worker_index].active_fd = -1;
      }
      drained_cv_.notify_all();
    }
  } catch (...) {
    // A crash — injected (fault::InjectedCrash is not a std::exception, so
    // it sails past the handler above) or real — escaped the request path.
    // Mark the slot dead and hand the corpse to the supervisor; the client
    // on the active connection sees a reset and retries.
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      WorkerSlot& slot = slots_[worker_index];
      if (slot.active_fd >= 0) {
        ::close(slot.active_fd);
        slot.active_fd = -1;
      }
      slot.dead = true;
    }
    supervisor_cv_.notify_one();
    drained_cv_.notify_all();
  }
}

void Server::supervisor_loop() {
  for (;;) {
    std::size_t dead_index = slots_.size();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      supervisor_cv_.wait(lock, [this] {
        if (stopping_.load()) return true;
        for (const WorkerSlot& slot : slots_) {
          if (slot.dead) return true;
        }
        return false;
      });
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].dead) {
          slots_[i].dead = false;
          dead_index = i;
          break;
        }
      }
      if (dead_index == slots_.size()) {
        if (stopping_.load()) return;
        continue;
      }
    }
    // Join outside the lock (the dying thread grabs queue_mutex_ on its way
    // out).  No other thread touches this slot's thread object: stop()
    // only joins workers after joining the supervisor.
    slots_[dead_index].thread.join();
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
    NETREC_LOG(kWarn) << "serve: worker " << dead_index
                      << " died; respawning with a fresh engine";
    if (stopping_.load()) continue;  // shutting down: no respawn
    slots_[dead_index].thread =
        std::thread([this, dead_index] { worker_loop(dead_index); });
  }
}

void Server::handle_connection(int fd, PlanningEngine& engine) {
  if (FAULT_POINT("serve.recv")) return;  // injected: drop before reading
  HttpRequest request;
  const double start = now_seconds();
  try {
    if (!read_http_request(fd, request)) return;  // idle close
  } catch (const HttpError& e) {
    write_http_response(fd, e.status(), "application/json",
                        error_body(e.what()));
    return;
  }
  if (FAULT_POINT("serve.stall")) {
    // Injected slow handler: parks this worker so overload tests can fill
    // the queue and exercise admission control.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  bool cache_hit = false;
  int status = 500;
  std::string body;
  try {
    std::tie(status, body) = route(request, engine, cache_hit);
  } catch (const HttpError& e) {
    status = e.status();
    body = error_body(e.what());
  } catch (const util::fault::InjectedFault& e) {
    // Recoverable injected failure (e.g. "pool.task"): retryable, so map
    // it to 503 + Retry-After rather than a terminal 500.
    status = 503;
    body = error_body(e.what());
  } catch (const std::exception& e) {
    status = 500;
    body = error_body(std::string("internal error: ") + e.what());
  }
  metrics_.record(request.method + " " + request.target, now_seconds() - start,
                  status >= 400, cache_hit);
  if (FAULT_POINT("serve.send")) return;  // injected: drop the response
  if (status == 503) {
    write_http_response(
        fd, status, "application/json", body,
        {{"Retry-After", std::to_string(opt_.retry_after_seconds)}});
  } else {
    write_http_response(fd, status, "application/json", body);
  }
}

std::pair<int, std::string> Server::route(const HttpRequest& request,
                                          PlanningEngine& engine,
                                          bool& cache_hit) {
  const std::string& target = request.target;
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";
  if (!is_get && !is_post) {
    throw HttpError(405, "unsupported method " + request.method);
  }

  if (target == "/v1/health") {
    if (!is_get) throw HttpError(405, "use GET /v1/health");
    util::Json body = util::Json::object();
    body.set("status", "ok");
    body.set("nodes", baseline_.graph.num_nodes());
    body.set("edges", baseline_.graph.num_edges());
    body.set("workers", opt_.workers);
    return {200, body.dump()};
  }
  if (target == "/v1/topology") {
    if (!is_get) throw HttpError(405, "use GET /v1/topology");
    return {200, describe_problem(baseline_).dump()};
  }
  if (target == "/v1/metrics") {
    if (!is_get) throw HttpError(405, "use GET /v1/metrics");
    util::Json body = util::Json::object();
    body.set("endpoints", metrics_.snapshot());
    const PlanCache::Stats stats = cache_.stats();
    util::Json cache = util::Json::object();
    cache.set("hits", stats.hits);
    cache.set("misses", stats.misses);
    cache.set("evictions", stats.evictions);
    cache.set("entries", stats.entries);
    cache.set("capacity", stats.capacity);
    const std::uint64_t lookups = stats.hits + stats.misses;
    cache.set("hit_rate", lookups == 0 ? 0.0
                                       : static_cast<double>(stats.hits) /
                                             static_cast<double>(lookups));
    body.set("plan_cache", cache);
    util::Json server = util::Json::object();
    server.set("workers", opt_.workers);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      std::size_t busy = 0;
      for (const WorkerSlot& slot : slots_) {
        if (slot.active_fd >= 0) ++busy;
      }
      server.set("busy_workers", busy);
      server.set("queue_depth", conn_queue_.size());
    }
    server.set("queue_budget", queue_budget());
    server.set("shed_total", shed_total_.load());
    server.set("worker_restarts", worker_restarts_.load());
    server.set("degraded_total", degraded_total_.load());
    body.set("server", server);
    return {200, body.dump()};
  }
  if (target == "/v1/plan") {
    if (!is_post) throw HttpError(405, "use POST /v1/plan");
    return {200, handle_plan(request.body, engine, cache_hit, now_seconds())};
  }
  if (target == "/v1/shutdown") {
    if (!is_post) throw HttpError(405, "use POST /v1/shutdown");
    if (!opt_.enable_shutdown_endpoint) {
      throw HttpError(404, "shutdown endpoint disabled");
    }
    request_stop();
    util::Json body = util::Json::object();
    body.set("status", "stopping");
    return {200, body.dump()};
  }
  throw HttpError(404, "no such endpoint: " + target);
}

std::string Server::handle_plan(const std::string& body,
                                PlanningEngine& engine, bool& cache_hit,
                                double start_seconds) {
  util::Json parsed;
  try {
    parsed = util::Json::parse(body);
  } catch (const std::exception& e) {
    throw HttpError(400, std::string("invalid JSON: ") + e.what());
  }
  PlanRequest request;
  try {
    request = parse_plan_request(parsed, baseline_);
  } catch (const std::invalid_argument& e) {
    throw HttpError(400, e.what());
  }

  const std::string key = canonical_key(request);
  const std::string digest = fingerprint(request);

  std::shared_ptr<const std::string> payload = cache_.find(key);
  cache_hit = payload != nullptr;
  bool degraded = false;
  if (!payload) {
    PlanOutcome outcome = engine.solve(request);
    degraded = outcome.degraded;
    payload = std::make_shared<const std::string>(outcome.payload.dump());
    if (degraded) {
      // Degraded payloads never enter the cache: a hit must always be
      // bit-identical to a *full* fresh solve.
      degraded_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cache_.insert(key, *payload);
    }
  }

  // The payload bytes are spliced in verbatim — identical between a cache
  // hit and a fresh solve.  Everything request-specific (fingerprint,
  // cached/degraded flags, latency) lives in the meta object outside those
  // bytes.
  std::string response = "{\"result\":";
  response += *payload;
  response += ",\"meta\":{\"fingerprint\":\"";
  response += digest;
  response += "\",\"cached\":";
  response += cache_hit ? "true" : "false";
  response += ",\"degraded\":";
  response += degraded ? "true" : "false";
  response += ",\"latency_ms\":";
  response += format_latency_ms(now_seconds() - start_seconds);
  response += "}}";
  return response;
}

}  // namespace netrec::serve
