#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "serve/http.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace netrec::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string error_body(const std::string& message) {
  util::Json body = util::Json::object();
  body.set("error", message);
  return body.dump();
}

/// Formats latency with fixed precision so response bytes stay compact.
std::string format_latency_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

util::Json describe_problem(const core::RecoveryProblem& problem) {
  util::Json out = util::Json::object();
  out.set("nodes", problem.graph.num_nodes());
  out.set("edges", problem.graph.num_edges());
  out.set("demands", problem.demands.size());
  out.set("total_demand", problem.total_demand());
  out.set("total_repair_cost_if_all_broken", [&] {
    double total = 0.0;
    for (std::size_t n = 0; n < problem.graph.num_nodes(); ++n) {
      total += problem.graph.node_repair_cost(static_cast<graph::NodeId>(n));
    }
    for (std::size_t e = 0; e < problem.graph.num_edges(); ++e) {
      total += problem.graph.edge_repair_cost(static_cast<graph::EdgeId>(e));
    }
    return total;
  }());
  return out;
}

}  // namespace

Server::Server(core::RecoveryProblem baseline, ServerOptions options)
    : baseline_(std::move(baseline)),
      opt_(std::move(options)),
      cache_(opt_.cache_capacity),
      metrics_(opt_.metrics_window) {
  if (opt_.workers == 0) {
    throw std::invalid_argument("Server: workers must be >= 1");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("Server::start called twice");
  }
  listen_fd_ = listen_on(opt_.bind_address, opt_.port);
  port_ = bound_port(listen_fd_);
  workers_.reserve(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  NETREC_LOG(kInfo) << "netrecd listening on " << opt_.bind_address << ":"
                    << port_ << " (" << opt_.workers << " workers)";
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::stop() {
  if (!running_.load()) return;
  if (!stopping_.exchange(true)) {
    // Unblock workers parked in accept(): shutdown makes pending and
    // future accepts fail immediately; close releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  listen_fd_ = -1;
  running_.store(false);
  request_stop();  // release wait()-ers even when stop() came first
}

void Server::worker_loop(std::size_t worker_index) {
  // Each worker owns a warm engine for its whole lifetime: the expensive
  // problem copy and thread-pool spin-up happen once, not per request.
  PlanningEngine engine(baseline_, opt_.engine);
  (void)worker_index;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) break;
      // Transient accept failures (ECONNABORTED, EMFILE...) should not
      // kill the worker; anything persistent will just spin back here.
      continue;
    }
    timeval timeout{};
    timeout.tv_sec = opt_.receive_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    try {
      handle_connection(fd, engine);
    } catch (const std::exception& e) {
      NETREC_LOG(kWarn) << "serve: dropping connection: " << e.what();
    }
    ::close(fd);
  }
}

void Server::handle_connection(int fd, PlanningEngine& engine) {
  HttpRequest request;
  const double start = now_seconds();
  try {
    if (!read_http_request(fd, request)) return;  // idle close
  } catch (const HttpError& e) {
    write_http_response(fd, e.status(), "application/json",
                        error_body(e.what()));
    return;
  }

  bool cache_hit = false;
  int status = 500;
  std::string body;
  try {
    std::tie(status, body) = route(request, engine, cache_hit);
  } catch (const HttpError& e) {
    status = e.status();
    body = error_body(e.what());
  } catch (const std::exception& e) {
    status = 500;
    body = error_body(std::string("internal error: ") + e.what());
  }
  metrics_.record(request.method + " " + request.target, now_seconds() - start,
                  status >= 400, cache_hit);
  write_http_response(fd, status, "application/json", body);
}

std::pair<int, std::string> Server::route(const HttpRequest& request,
                                          PlanningEngine& engine,
                                          bool& cache_hit) {
  const std::string& target = request.target;
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";
  if (!is_get && !is_post) {
    throw HttpError(405, "unsupported method " + request.method);
  }

  if (target == "/v1/health") {
    if (!is_get) throw HttpError(405, "use GET /v1/health");
    util::Json body = util::Json::object();
    body.set("status", "ok");
    body.set("nodes", baseline_.graph.num_nodes());
    body.set("edges", baseline_.graph.num_edges());
    body.set("workers", opt_.workers);
    return {200, body.dump()};
  }
  if (target == "/v1/topology") {
    if (!is_get) throw HttpError(405, "use GET /v1/topology");
    return {200, describe_problem(baseline_).dump()};
  }
  if (target == "/v1/metrics") {
    if (!is_get) throw HttpError(405, "use GET /v1/metrics");
    util::Json body = util::Json::object();
    body.set("endpoints", metrics_.snapshot());
    const PlanCache::Stats stats = cache_.stats();
    util::Json cache = util::Json::object();
    cache.set("hits", stats.hits);
    cache.set("misses", stats.misses);
    cache.set("evictions", stats.evictions);
    cache.set("entries", stats.entries);
    cache.set("capacity", stats.capacity);
    const std::uint64_t lookups = stats.hits + stats.misses;
    cache.set("hit_rate", lookups == 0 ? 0.0
                                       : static_cast<double>(stats.hits) /
                                             static_cast<double>(lookups));
    body.set("plan_cache", cache);
    return {200, body.dump()};
  }
  if (target == "/v1/plan") {
    if (!is_post) throw HttpError(405, "use POST /v1/plan");
    return {200, handle_plan(request.body, engine, cache_hit, now_seconds())};
  }
  if (target == "/v1/shutdown") {
    if (!is_post) throw HttpError(405, "use POST /v1/shutdown");
    if (!opt_.enable_shutdown_endpoint) {
      throw HttpError(404, "shutdown endpoint disabled");
    }
    request_stop();
    util::Json body = util::Json::object();
    body.set("status", "stopping");
    return {200, body.dump()};
  }
  throw HttpError(404, "no such endpoint: " + target);
}

std::string Server::handle_plan(const std::string& body,
                                PlanningEngine& engine, bool& cache_hit,
                                double start_seconds) {
  util::Json parsed;
  try {
    parsed = util::Json::parse(body);
  } catch (const std::exception& e) {
    throw HttpError(400, std::string("invalid JSON: ") + e.what());
  }
  PlanRequest request;
  try {
    request = parse_plan_request(parsed, baseline_);
  } catch (const std::invalid_argument& e) {
    throw HttpError(400, e.what());
  }

  const std::string key = canonical_key(request);
  const std::string digest = fingerprint(request);

  std::shared_ptr<const std::string> payload = cache_.find(key);
  cache_hit = payload != nullptr;
  if (!payload) {
    std::string fresh = engine.solve(request).dump();
    payload = std::make_shared<const std::string>(std::move(fresh));
    cache_.insert(key, *payload);
  }

  // The payload bytes are spliced in verbatim — identical between a cache
  // hit and a fresh solve.  Everything request-specific (fingerprint,
  // cached flag, latency) lives in the meta object outside those bytes.
  std::string response = "{\"result\":";
  response += *payload;
  response += ",\"meta\":{\"fingerprint\":\"";
  response += digest;
  response += "\",\"cached\":";
  response += cache_hit ? "true" : "false";
  response += ",\"latency_ms\":";
  response += format_latency_ms(now_seconds() - start_seconds);
  response += "}}";
  return response;
}

}  // namespace netrec::serve
