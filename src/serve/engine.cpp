#include "serve/engine.hpp"

#include <memory>
#include <utility>

#include "heuristics/baselines.hpp"
#include "heuristics/schedule.hpp"
#include "recovery/dynamics.hpp"
#include "recovery/policies.hpp"
#include "recovery/timeline.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netrec::serve {

namespace {

/// RAII damage state: applies the request's broken flags on construction,
/// clears them on destruction (also on exception), so the engine's graph
/// returns to fully-operational between requests.
class ScopedDamage {
 public:
  ScopedDamage(graph::Graph& g, const PlanRequest& request)
      : g_(g), request_(request) {
    for (graph::NodeId n : request_.broken_nodes) g_.set_node_broken(n, true);
    for (graph::EdgeId e : request_.broken_edges) g_.set_edge_broken(e, true);
  }
  ~ScopedDamage() {
    for (graph::NodeId n : request_.broken_nodes) {
      g_.set_node_broken(n, false);
    }
    for (graph::EdgeId e : request_.broken_edges) {
      g_.set_edge_broken(e, false);
    }
  }
  ScopedDamage(const ScopedDamage&) = delete;
  ScopedDamage& operator=(const ScopedDamage&) = delete;

 private:
  graph::Graph& g_;
  const PlanRequest& request_;
};

/// Clears the engine's deadline pointer when the solve leaves scope — the
/// Deadline it points at is a stack local of solve().
class ScopedDeadline {
 public:
  ScopedDeadline(core::IspOptions& isp, const util::Deadline* deadline)
      : isp_(isp) {
    isp_.deadline = deadline;
  }
  ~ScopedDeadline() { isp_.deadline = nullptr; }
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  core::IspOptions& isp_;
};

util::Json repair_entry(const char* kind, std::int32_t id,
                        const std::string& label) {
  util::Json entry = util::Json::object();
  entry.set("kind", kind);
  entry.set("id", static_cast<double>(id));
  entry.set("label", label);
  return entry;
}

/// Shared isp-shaped payload builder: the full ISP solve and the degraded
/// SRT fallback emit the same schema, differing only in the solution they
/// schedule — which is what makes the degraded differential (response ==
/// heuristic_plan byte-identically) checkable at all.
util::Json isp_payload(const core::RecoveryProblem& problem,
                       const core::RecoverySolution& solution) {
  const heuristics::RecoverySchedule schedule =
      heuristics::schedule_repairs(problem, solution);

  util::Json repairs = util::Json::array();
  for (const heuristics::ScheduleStep& step : schedule.steps) {
    util::Json entry = repair_entry(step.is_node ? "node" : "edge",
                                    step.is_node ? step.node : step.edge,
                                    step.label);
    entry.set("restored_after", step.restored_after);
    repairs.push_back(std::move(entry));
  }

  util::Json restoration = util::Json::object();
  restoration.set("series", [&] {
    util::Json series = util::Json::array();
    for (double v : schedule.restored_series()) series.push_back(v);
    return series;
  }());
  restoration.set("auc", schedule.restoration_auc());
  restoration.set("steps_to_90", schedule.steps_to_restore(0.9));

  // No wall-clock fields: the payload must be a pure function of the
  // request so cache hits are byte-identical to fresh solves.
  util::Json out = util::Json::object();
  out.set("mode", "isp");
  out.set("algorithm", solution.algorithm);
  out.set("feasible", solution.instance_feasible);
  out.set("total_demand", schedule.total_demand);
  out.set("satisfied_fraction", solution.satisfied_fraction);
  out.set("repair_cost", solution.repair_cost);
  out.set("total_repairs", solution.total_repairs());
  out.set("iterations", solution.iterations);
  out.set("repairs", std::move(repairs));
  out.set("restoration", std::move(restoration));
  return out;
}

}  // namespace

PlanningEngine::PlanningEngine(const core::RecoveryProblem& baseline,
                               EngineOptions options)
    : problem_(baseline), opt_(std::move(options)) {
  // The request is the complete damage state; any damage the loaded
  // topology carried would silently compound every plan.
  for (std::size_t n = 0; n < problem_.graph.num_nodes(); ++n) {
    problem_.graph.set_node_broken(static_cast<graph::NodeId>(n), false);
  }
  for (std::size_t e = 0; e < problem_.graph.num_edges(); ++e) {
    problem_.graph.set_edge_broken(static_cast<graph::EdgeId>(e), false);
  }
  // One warm pool for the engine's lifetime instead of a spawn per solve.
  pool_ = util::ThreadPool::acquire(owned_pool_, opt_.solve_threads, nullptr);
  opt_.isp.pool = pool_;
  opt_.isp.solve_threads = opt_.solve_threads;
}

PlanOutcome PlanningEngine::solve(const PlanRequest& request) {
  if (FAULT_POINT("engine.solve")) {
    // Worker-killing crash: InjectedCrash is not a std::exception, so it
    // unwinds straight through the request path to the worker loop and
    // exercises the supervisor's respawn.
    throw util::fault::InjectedCrash{"engine.solve"};
  }
  ScopedDamage damage(problem_.graph, request);
  const util::Deadline deadline(opt_.deadline_ms / 1e3);  // <=0 disables
  ScopedDeadline scoped(opt_.isp, opt_.deadline_ms > 0.0 ? &deadline
                                                         : nullptr);
  try {
    util::Json payload = request.mode == PlanRequest::Mode::kIsp
                             ? solve_isp(request)
                             : solve_timeline(request);
    return {std::move(payload), false};
  } catch (const core::DeadlineExceeded&) {
    // Graceful degradation: the damage scope is still active, so the
    // fallback plans against exactly the requested state.
    return {heuristic_plan_damaged(), true};
  }
}

util::Json PlanningEngine::heuristic_plan(const PlanRequest& request) {
  ScopedDamage damage(problem_.graph, request);
  return heuristic_plan_damaged();
}

util::Json PlanningEngine::heuristic_plan_damaged() {
  return isp_payload(problem_,
                     heuristics::solve_srt(problem_, opt_.isp.lp));
}

util::Json PlanningEngine::solve_isp(const PlanRequest&) {
  core::IspSolver solver(problem_, opt_.isp);
  return isp_payload(problem_, solver.solve());
}

util::Json PlanningEngine::solve_timeline(const PlanRequest& request) {
  std::unique_ptr<recovery::Policy> policy;
  if (request.policy == PlanRequest::Policy::kReplay) {
    recovery::ReplayOptions ropt;
    ropt.isp = opt_.isp;
    policy = std::make_unique<recovery::ReplayPolicy>(ropt);
  } else {
    recovery::ReplanOptions ropt;
    ropt.isp = opt_.isp;
    policy = std::make_unique<recovery::ReplanPolicy>(ropt);
  }
  recovery::StaticDynamics dynamics;

  recovery::TimelineOptions topt;
  topt.stage_budget = request.stage_budget;
  topt.max_stages = request.max_stages;
  topt.pool = pool_;
  topt.solve_threads = opt_.solve_threads;

  util::Rng rng(request.seed);
  const recovery::TimelineResult result =
      recovery::Timeline(problem_, *policy, dynamics, topt).run(rng);

  util::Json repairs = util::Json::array();
  for (const recovery::StageRecord& stage : result.stages) {
    for (const recovery::RepairAction& action : stage.repairs) {
      util::Json entry = repair_entry(action.is_node ? "node" : "edge",
                                      action.is_node ? action.node
                                                     : action.edge,
                                      action.label);
      entry.set("stage", stage.stage);
      repairs.push_back(std::move(entry));
    }
  }

  util::Json restoration = util::Json::object();
  restoration.set("series", [&] {
    util::Json series = util::Json::array();
    for (double v : result.stage_series(request.max_stages)) {
      series.push_back(v);
    }
    return series;
  }());
  restoration.set("auc", result.restoration_auc(request.max_stages));
  restoration.set("stages_to_90", result.stages_to_restore(0.9));

  util::Json out = util::Json::object();
  out.set("mode", "timeline");
  out.set("policy", result.policy);
  out.set("total_demand", result.total_demand);
  out.set("initial_routed", result.initial_routed);
  out.set("final_routed", result.final_routed);
  out.set("repair_cost", result.total_repair_cost);
  out.set("total_repairs", result.total_repairs);
  out.set("stages", result.stages.size());
  out.set("repairs", std::move(repairs));
  out.set("restoration", std::move(restoration));
  return out;
}

}  // namespace netrec::serve
