// PlanningEngine — one warm, re-entrant-by-isolation recovery solver.
//
// Each server worker owns one engine.  The engine keeps a private copy of
// the preloaded problem (its graph's broken flags are scratch state for the
// current request) plus a persistent intra-solve ThreadPool, so serving a
// request never touches shared mutable state: concurrency comes from many
// engines side by side, determinism from each engine being single-request
// at a time.  The underlying solver layers (ViewCache snapshots,
// PathLpSession column pools, the PR 7 parallel kernels) are constructed
// per solve inside IspSolver/Timeline and reuse state *within* a request.
//
// The baseline topology is treated as fully operational: the request is the
// complete damage state (engine construction clears any broken flags the
// loaded topology carried), which makes the request fingerprint and the
// solved state bijective — the precondition for cache hits returning
// bit-identical plans.
//
// solve() is deterministic: the payload contains no wall-clock or
// machine-dependent fields, so payload(request) is a pure function and two
// engines (or one engine twice) produce byte-identical dumps for one
// request.  That property is what the plan cache, the load-generator
// identity check and the concurrency test suite all assert.
#pragma once

#include <cstddef>
#include <optional>

#include "core/isp.hpp"
#include "core/problem.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace netrec::serve {

struct EngineOptions {
  /// Solver configuration shared by both modes; `pool`/`solve_threads` are
  /// overwritten by the engine's own warm pool.
  core::IspOptions isp;
  /// Intra-solve parallelism per request (PR 7 contract: bit-identical to
  /// serial at any count).  1 = serial, 0 = auto.
  std::size_t solve_threads = 1;
};

class PlanningEngine {
 public:
  explicit PlanningEngine(const core::RecoveryProblem& baseline,
                          EngineOptions options = {});

  /// Solves the request against the baseline topology and returns the
  /// deterministic response payload (the "result" object of the wire
  /// response).  Damage flags are applied before and restored after the
  /// solve, also on exception.
  util::Json solve(const PlanRequest& request);

  const core::RecoveryProblem& problem() const { return problem_; }

 private:
  util::Json solve_isp(const PlanRequest& request);
  util::Json solve_timeline(const PlanRequest& request);

  core::RecoveryProblem problem_;
  EngineOptions opt_;
  std::optional<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace netrec::serve
