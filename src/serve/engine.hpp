// PlanningEngine — one warm, re-entrant-by-isolation recovery solver.
//
// Each server worker owns one engine.  The engine keeps a private copy of
// the preloaded problem (its graph's broken flags are scratch state for the
// current request) plus a persistent intra-solve ThreadPool, so serving a
// request never touches shared mutable state: concurrency comes from many
// engines side by side, determinism from each engine being single-request
// at a time.  The underlying solver layers (ViewCache snapshots,
// PathLpSession column pools, the PR 7 parallel kernels) are constructed
// per solve inside IspSolver/Timeline and reuse state *within* a request.
//
// The baseline topology is treated as fully operational: the request is the
// complete damage state (engine construction clears any broken flags the
// loaded topology carried), which makes the request fingerprint and the
// solved state bijective — the precondition for cache hits returning
// bit-identical plans.
//
// solve() is deterministic: the payload contains no wall-clock or
// machine-dependent fields, so payload(request) is a pure function and two
// engines (or one engine twice) produce byte-identical dumps for one
// request.  That property is what the plan cache, the load-generator
// identity check and the concurrency test suite all assert.
//
// Robustness (PR 9): a nonzero deadline_ms arms a cooperative per-request
// deadline inside the ISP iteration loop.  On expiry (or the "isp.deadline"
// fault site) the engine degrades instead of hanging: it returns the SRT
// heuristic fallback plan with PlanOutcome::degraded set, which the server
// tags "degraded": true in meta and never caches.  The degraded payload is
// itself deterministic — bit-identical to heuristic_plan(request) — so the
// chaos bench can identity-check degraded responses too.
#pragma once

#include <cstddef>
#include <optional>

#include "core/isp.hpp"
#include "core/problem.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace netrec::serve {

struct EngineOptions {
  /// Solver configuration shared by both modes; `pool`/`solve_threads` are
  /// overwritten by the engine's own warm pool.
  core::IspOptions isp;
  /// Intra-solve parallelism per request (PR 7 contract: bit-identical to
  /// serial at any count).  1 = serial, 0 = auto.
  std::size_t solve_threads = 1;
  /// Per-request solve deadline in milliseconds; 0 = unlimited.  Expiry
  /// degrades to the heuristic fallback plan instead of failing.
  double deadline_ms = 0.0;
};

/// What one solve produced: the payload bytes-to-be, and whether they are
/// the degraded (deadline-hit) heuristic fallback rather than the full
/// solve.  Degraded payloads must never enter the plan cache.
struct PlanOutcome {
  util::Json payload;
  bool degraded = false;
};

class PlanningEngine {
 public:
  explicit PlanningEngine(const core::RecoveryProblem& baseline,
                          EngineOptions options = {});

  /// Solves the request against the baseline topology and returns the
  /// deterministic response payload (the "result" object of the wire
  /// response).  Damage flags are applied before and restored after the
  /// solve, also on exception.  When the per-request deadline expires the
  /// outcome carries the heuristic fallback plan with degraded=true.
  PlanOutcome solve(const PlanRequest& request);

  /// The deadline-degradation fallback: SRT repair plan + marginal-gain
  /// schedule, in the same payload shape as a full isp solve.  Public so
  /// tests and the chaos bench can compute the expected degraded payload
  /// directly (the differential: degraded response == this, byte for byte).
  util::Json heuristic_plan(const PlanRequest& request);

  const core::RecoveryProblem& problem() const { return problem_; }

 private:
  util::Json solve_isp(const PlanRequest& request);
  util::Json solve_timeline(const PlanRequest& request);
  /// heuristic_plan minus the damage scoping (callers hold ScopedDamage).
  util::Json heuristic_plan_damaged();

  core::RecoveryProblem problem_;
  EngineOptions opt_;
  std::optional<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace netrec::serve
