#include "serve/preload.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/gml.hpp"
#include "graph/ntb.hpp"
#include "scenario/scenario.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace netrec::serve {

void declare_preload_flags(util::Flags& flags) {
  flags.define("topology", "bell_canada",
               "generator family (bell_canada|erdos_renyi|caida|rmat|"
               "barabasi_albert) or gml:<path> / ntb:<path>");
  flags.define("topo-seed", "1", "topology generator seed");
  flags.define("pairs", "8", "far-apart demand pairs placed on the topology");
  flags.define("demand", "12", "demand volume per pair");
  flags.define("demand-seed", "7", "demand placement seed");
}

core::RecoveryProblem build_preloaded_problem(const util::Flags& flags) {
  const std::string spec = flags.get("topology");
  core::RecoveryProblem problem;
  if (spec.rfind("gml:", 0) == 0) {
    problem.graph = graph::load_gml_file(spec.substr(4));
  } else if (spec.rfind("ntb:", 0) == 0) {
    problem.graph = graph::load_ntb_file(spec.substr(4));
  } else {
    topology::GeneratorParams params = topology::params_for(spec);
    params.seed = static_cast<std::uint64_t>(flags.get_int("topo-seed"));
    problem.graph = topology::make_topology(params);
  }

  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs"));
  const double demand = flags.get_double("demand");
  if (pairs > 0) {
    util::Rng rng(static_cast<std::uint64_t>(flags.get_int("demand-seed")));
    problem.demands =
        scenario::far_apart_demands(problem.graph, pairs, demand, rng);
  }
  return problem;
}

std::string describe_preload(const core::RecoveryProblem& problem,
                             const util::Flags& flags) {
  return flags.get("topology") + " seed=" + flags.get("topo-seed") + ", " +
         std::to_string(problem.graph.num_nodes()) + " nodes / " +
         std::to_string(problem.graph.num_edges()) + " edges, " +
         std::to_string(problem.demands.size()) + " demands";
}

}  // namespace netrec::serve
