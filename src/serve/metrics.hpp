// Windowed per-endpoint service metrics (requests, error count, cache hit
// rate, p50/p99 latency over a sliding window of recent samples), exposed
// as a JSON snapshot on /v1/metrics.
//
// The window is a fixed-capacity ring of the most recent latencies: cheap
// O(1) recording on the request path, percentile computation deferred to
// snapshot time (sorting a copy), and old traffic ages out instead of
// polluting the percentiles forever — the shape of CCF's windowed rate
// metrics, reduced to what one process needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace netrec::serve {

/// Fixed-capacity ring of the most recent latency samples.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 1024);

  void add(double seconds);
  /// Samples currently held (<= capacity).
  std::size_t count() const { return filled_; }

  /// Nearest-rank percentile over the window, q in [0, 1]; 0 when empty.
  double percentile(double q) const;
  double mean() const;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
};

/// Thread-safe per-endpoint registry.  record() is called once per request
/// from whichever worker served it; snapshot() renders every endpoint in
/// sorted order so the emission is deterministic for a given history.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t window_capacity = 1024);

  void record(const std::string& endpoint, double seconds, bool error,
              bool cache_hit);

  /// {"<endpoint>": {requests, errors, cache_hits, cache_hit_rate,
  ///   window_samples, latency_ms: {mean, p50, p99}}}
  util::Json snapshot() const;

 private:
  struct Entry {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t cache_hits = 0;
    LatencyWindow window;
    explicit Entry(std::size_t capacity) : window(capacity) {}
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::size_t window_capacity_;
};

}  // namespace netrec::serve
