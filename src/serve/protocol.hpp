// netrecd wire protocol: the damage-state request and its canonical
// fingerprint.
//
// A plan request is the paper's what-if question as a service call: the
// client names the broken elements of the preloaded topology (the request
// is the COMPLETE damage state — anything not listed is operational) plus
// solve options, and gets back the repair plan, restoration series and AUC.
// Requests are untrusted input: parsing is strict (unknown keys, non-integer
// ids, out-of-range references and malformed options are all hard errors
// with client-facing messages, never silent no-ops).
//
// The fingerprint is the plan cache's key contract: two requests that
// describe the same damage state and the same solve options — regardless of
// list order, duplicates, or which optional fields were spelled out — must
// map to the same canonical key, so a cache hit can return the stored plan
// byte-identical to what a fresh solve would produce.  docs/serve_protocol.md
// documents the exact definition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "util/json.hpp"

namespace netrec::serve {

struct PlanRequest {
  /// Broken elements by id, canonicalised at parse time: sorted ascending,
  /// duplicates removed.
  std::vector<graph::NodeId> broken_nodes;
  std::vector<graph::EdgeId> broken_edges;

  /// kIsp: one-shot ISP plan + marginal-gain repair schedule (the paper's
  /// setting).  kTimeline: staged execution under static dynamics with a
  /// per-stage crew budget.
  enum class Mode { kIsp, kTimeline };
  Mode mode = Mode::kIsp;

  /// Timeline-mode repair policy (ignored in kIsp mode).
  enum class Policy { kReplay, kReplan };
  Policy policy = Policy::kReplay;

  /// Timeline-mode repairs per stage; 0 = unlimited.  Ignored in kIsp mode.
  std::size_t stage_budget = 1;
  /// Timeline-mode stage cap and AUC padding horizon.  Ignored in kIsp mode.
  std::size_t max_stages = 32;
  /// Timeline-mode RNG seed (the solve is deterministic given the request,
  /// so the seed is part of the fingerprint).  Ignored in kIsp mode.
  std::uint64_t seed = 1;
};

/// Parses and validates a plan-request document against the preloaded
/// problem's bounds.  Throws std::invalid_argument with a message safe to
/// return to the client.
PlanRequest parse_plan_request(const util::Json& body,
                               const core::RecoveryProblem& baseline);

/// Canonical cache key: a collision-free string over the canonicalised
/// damage state and every option the solve depends on (timeline-only fields
/// are omitted in kIsp mode so they cannot split cache entries).
std::string canonical_key(const PlanRequest& request);

/// FNV-1a 64-bit hex digest of canonical_key(); the compact fingerprint
/// reported to clients and in metrics.
std::string fingerprint(const PlanRequest& request);

const char* mode_name(PlanRequest::Mode mode);
const char* policy_name(PlanRequest::Policy policy);

}  // namespace netrec::serve
