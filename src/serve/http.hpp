// Minimal HTTP/1.1 plumbing over blocking POSIX sockets — just enough for
// netrecd's request/response JSON protocol, not a general web server.
//
// Supported subset: one request per connection (every response carries
// "Connection: close"), request line + headers + Content-Length body,
// CRLF or bare-LF line endings, hard caps on header and body size so an
// abusive client cannot balloon a worker.  Chunked encoding, pipelining
// and TLS are out of scope.
//
// All fds are plain blocking sockets with a receive timeout; writes use
// send(MSG_NOSIGNAL) so a client hanging up mid-response surfaces as an
// error return instead of SIGPIPE.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace netrec::serve {

/// Protocol-level failure carrying the HTTP status the server should
/// answer with (400 malformed, 413 too large, ...).
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

struct HttpRequest {
  std::string method;
  std::string target;
  /// Header names lower-cased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
  std::string body;
};

inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/// Reads one request from `fd`.  Returns false on clean EOF before any
/// bytes arrived (client closed an idle connection); throws HttpError on
/// malformed or oversized input and std::runtime_error on socket errors.
bool read_http_request(int fd, HttpRequest& out);

/// Writes a complete response (status line, Content-Type, Content-Length,
/// Connection: close, body).  Returns false when the client hung up.
bool write_http_response(int fd, int status, const std::string& content_type,
                         const std::string& body);

/// As above, with extra response headers ("Retry-After" on shed 503s).
/// Names/values are emitted verbatim; callers must not include CR/LF.
bool write_http_response(
    int fd, int status, const std::string& content_type,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers);

const char* http_status_text(int status);

/// Binds and listens on host:port (port 0 = kernel-assigned); returns the
/// listening fd.  Throws std::runtime_error with errno context on failure.
int listen_on(const std::string& host, int port, int backlog = 64);

/// The actual bound port of a listening fd (resolves port-0 binds).
int bound_port(int fd);

/// A parsed one-shot client response: status, lower-cased headers, body.
struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Blocking one-shot HTTP client for tests and the load generator: connects
/// to host:port, sends the request, reads and parses the full response
/// (headers included, so callers can honor Retry-After).  Throws
/// std::runtime_error on connection or protocol failure.
HttpResponse http_fetch(const std::string& host, int port,
                        const std::string& method, const std::string& target,
                        const std::string& body);

/// Status-and-body convenience wrapper over http_fetch.
int http_request(const std::string& host, int port, const std::string& method,
                 const std::string& target, const std::string& body,
                 std::string& response_body);

}  // namespace netrec::serve
