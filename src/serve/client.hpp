// serve::Client — retrying HTTP client for netrecd.
//
// Wraps http_fetch with the retry discipline a fault-tolerant server
// expects of its callers: transport errors (connection reset by a crashed
// worker, dropped response from an injected send fault) and 503 overload
// responses are retried with capped exponential backoff plus deterministic
// jitter; when the server advertises Retry-After on a 503 the client
// honors it (capped) instead of its own backoff.  Everything else — 2xx,
// 4xx, 500 — is returned to the caller immediately: those are answers,
// not outages.
//
// Determinism: the jitter stream is seeded (ClientOptions::jitter_seed),
// so a given client instance retries on an identical schedule run-to-run.
// A Client is single-threaded; give each load-generator thread its own.
#pragma once

#include <cstdint>
#include <string>

#include "serve/http.hpp"
#include "util/rng.hpp"

namespace netrec::serve {

struct ClientOptions {
  /// Total tries (first attempt + retries).
  int max_attempts = 4;
  /// Backoff before retry k (0-based) is initial * multiplier^k, capped.
  double initial_backoff_ms = 25.0;
  double max_backoff_ms = 1000.0;
  double backoff_multiplier = 2.0;
  /// Jitter stream seed; the actual sleep is backoff * [0.5, 1.0).
  std::uint64_t jitter_seed = 0x5eedu;
  /// Upper bound applied to server-advertised Retry-After waits so a
  /// misconfigured server cannot park the client for minutes.
  double retry_after_cap_ms = 2000.0;
};

/// Outcome of a request() call after retries are exhausted or resolved.
struct ClientResult {
  /// Final response; status == 0 means every attempt failed at transport
  /// level (error holds the last failure).
  HttpResponse response;
  /// Attempts actually made (>= 1).
  int attempts = 0;
  /// Transport failures + 503s encountered along the way.
  int transient_errors = 0;
  /// Last transport error message (empty if none).
  std::string error;

  bool ok() const { return response.status > 0 && response.status < 500; }
};

class Client {
 public:
  Client(std::string host, int port, ClientOptions options = {});

  /// Sends one request, retrying transport failures and 503s with backoff.
  ClientResult request(const std::string& method, const std::string& target,
                       const std::string& body = "");

 private:
  double backoff_ms(int retry_index, const HttpResponse* last_response);

  std::string host_;
  int port_;
  ClientOptions opt_;
  util::Rng rng_;
};

}  // namespace netrec::serve
