#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace netrec::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

ssize_t recv_some(int fd, char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Splits the header block into lines, accepting CRLF or bare LF.
std::vector<std::string> header_lines(const std::string& block) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find('\n', pos);
    if (eol == std::string::npos) eol = block.size();
    std::size_t end = eol;
    if (end > pos && block[end - 1] == '\r') --end;
    if (end > pos) lines.push_back(block.substr(pos, end - pos));
    pos = eol + 1;
  }
  return lines;
}

}  // namespace

const char* http_status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

bool read_http_request(int fd, HttpRequest& out) {
  std::string buffer;
  // Read until the blank line terminating the header block.
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    char chunk[4096];
    const ssize_t n = recv_some(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw HttpError(408, "timed out reading request");
      }
      sys_fail("recv");
    }
    if (n == 0) {
      if (buffer.empty()) return false;  // idle connection closed
      throw HttpError(400, "connection closed mid-request");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxHeaderBytes + kMaxBodyBytes) {
      throw HttpError(413, "request too large");
    }
    header_end = buffer.find("\r\n\r\n");
    std::size_t skip = 4;
    if (header_end == std::string::npos) {
      header_end = buffer.find("\n\n");
      skip = 2;
    }
    if (header_end == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        throw HttpError(413, "header block too large");
      }
      continue;
    }
    header_end += skip;
  }

  const std::string head = buffer.substr(0, header_end);
  std::string body = buffer.substr(header_end);

  const std::vector<std::string> lines = header_lines(head);
  if (lines.empty()) throw HttpError(400, "empty request");
  // Request line: METHOD SP TARGET SP VERSION.
  {
    const std::string& line = lines.front();
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      throw HttpError(400, "malformed request line");
    }
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      throw HttpError(400, "malformed HTTP version");
    }
  }
  out.headers.clear();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) {
      throw HttpError(400, "malformed header line");
    }
    out.headers[lower(trim(lines[i].substr(0, colon)))] =
        trim(lines[i].substr(colon + 1));
  }

  std::size_t content_length = 0;
  if (const auto it = out.headers.find("content-length");
      it != out.headers.end()) {
    std::size_t consumed = 0;
    unsigned long long parsed = 0;
    try {
      parsed = std::stoull(it->second, &consumed);
    } catch (const std::exception&) {
      throw HttpError(400, "malformed Content-Length");
    }
    if (consumed != it->second.size()) {
      throw HttpError(400, "malformed Content-Length");
    }
    if (parsed > kMaxBodyBytes) throw HttpError(413, "body too large");
    content_length = static_cast<std::size_t>(parsed);
  } else if (out.headers.count("transfer-encoding")) {
    throw HttpError(400, "chunked transfer encoding is not supported");
  }

  while (body.size() < content_length) {
    char chunk[4096];
    const ssize_t n = recv_some(
        fd, chunk, std::min(sizeof(chunk), content_length - body.size()));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw HttpError(408, "timed out reading request body");
      }
      sys_fail("recv");
    }
    if (n == 0) throw HttpError(400, "connection closed mid-body");
    body.append(chunk, static_cast<std::size_t>(n));
  }
  if (body.size() > content_length) {
    // Trailing bytes beyond Content-Length (pipelining) are unsupported.
    throw HttpError(400, "unexpected bytes after request body");
  }
  out.body = std::move(body);
  return true;
}

bool write_http_response(int fd, int status, const std::string& content_type,
                         const std::string& body) {
  return write_http_response(fd, status, content_type, body, {});
}

bool write_http_response(
    int fd, int status, const std::string& content_type,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     http_status_text(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  return send_all(fd, head.data(), head.size()) &&
         send_all(fd, body.data(), body.size());
}

int listen_on(const std::string& host, int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("listen_on: bad bind address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("listen");
  }
  return fd;
}

int bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    sys_fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

HttpResponse http_fetch(const std::string& host, int port,
                        const std::string& method, const std::string& target,
                        const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_request: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("connect " + host + ":" + std::to_string(port));
  }

  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    throw std::runtime_error("http_request: send failed");
  }

  std::string response;
  for (;;) {
    char chunk[4096];
    const ssize_t n = recv_some(fd, chunk, sizeof(chunk));
    if (n < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("recv");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
    if (response.size() > kMaxHeaderBytes + kMaxBodyBytes) {
      ::close(fd);
      throw std::runtime_error("http_request: oversized response");
    }
  }
  ::close(fd);

  std::size_t header_end = response.find("\r\n\r\n");
  std::size_t skip = 4;
  if (header_end == std::string::npos) {
    header_end = response.find("\n\n");
    skip = 2;
  }
  if (header_end == std::string::npos) {
    throw std::runtime_error("http_request: malformed response");
  }
  const std::vector<std::string> lines =
      header_lines(response.substr(0, header_end));
  if (lines.empty()) {
    throw std::runtime_error("http_request: empty response head");
  }
  // "HTTP/1.1 NNN ...".
  const std::string& status_line = lines.front();
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos || status_line.size() < sp + 4) {
    throw std::runtime_error("http_request: malformed status line");
  }
  HttpResponse out;
  out.status = std::stoi(status_line.substr(sp + 1, 3));
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;  // tolerate junk headers
    out.headers[lower(trim(lines[i].substr(0, colon)))] =
        trim(lines[i].substr(colon + 1));
  }
  out.body = response.substr(header_end + skip);
  return out;
}

int http_request(const std::string& host, int port, const std::string& method,
                 const std::string& target, const std::string& body,
                 std::string& response_body) {
  HttpResponse response = http_fetch(host, port, method, target, body);
  response_body = std::move(response.body);
  return response.status;
}

}  // namespace netrec::serve
