// Shared topology preloading for netrecd and the load generator.
//
// The identity check in bench/load_serve compares server responses against
// direct IspSolver calls, which only means something when both sides planned
// over the exact same problem instance.  Both binaries therefore declare the
// same flags and call the same builder: identical flag values produce a
// bit-identical RecoveryProblem (generators and demand placement are seeded,
// file loads are deterministic).
//
//   --topology  generator family (bell_canada | erdos_renyi | caida | rmat |
//               barabasi_albert, plus the er/ba shorthands), or "gml:<path>" /
//               "ntb:<path>" to load a file
//   --topo-seed generator seed (ignored for file loads)
//   --pairs     number of far-apart demand pairs placed on the topology
//   --demand    demand volume per pair
//   --demand-seed  seed for demand placement
#pragma once

#include "core/problem.hpp"
#include "util/flags.hpp"

namespace netrec::serve {

/// Declares the preload flags with their defaults (bell_canada, 8 pairs of
/// 12 demand, seeds 1/7).
void declare_preload_flags(util::Flags& flags);

/// Builds the problem the flags describe; throws std::invalid_argument on a
/// malformed --topology spec and std::runtime_error on unreadable files.
core::RecoveryProblem build_preloaded_problem(const util::Flags& flags);

/// One-line human description of what was loaded ("bell_canada seed=1,
/// 25 nodes / 45 edges, 8 demand pairs"), for startup logs.
std::string describe_preload(const core::RecoveryProblem& problem,
                             const util::Flags& flags);

}  // namespace netrec::serve
