// netrecd: the recovery planner as a long-running HTTP-JSON service.
//
// Preloads one topology + demand set at startup, then serves damage-state
// what-if requests from a pool of warm planning engines:
//
//   netrecd --port 8080 --workers 4
//   netrecd --topology gml:zoo.gml --pairs 12 --demand 8
//
//   curl -s localhost:8080/v1/health
//   curl -s -X POST localhost:8080/v1/plan -d '{"broken_nodes":[3,7]}'
//   curl -s localhost:8080/v1/metrics
//
// Request/response schemas: docs/serve_protocol.md.  The process runs until
// SIGINT/SIGTERM or POST /v1/shutdown, then drains workers and exits 0.
#include <csignal>
#include <cstdio>
#include <thread>

#include "serve/preload.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  serve::declare_preload_flags(flags);
  flags.define("bind", "127.0.0.1", "address to listen on");
  flags.define("port", "0", "port to listen on (0 = kernel-assigned)");
  flags.define("workers", "4", "worker threads (= concurrent requests)");
  flags.define("solve-threads", "1",
               "intra-solve threads per worker (bit-identical to serial)");
  flags.define("cache", "4096", "plan cache capacity (0 = disabled)");
  flags.define("metrics-window", "4096",
               "latency samples per endpoint for p50/p99");
  flags.define("deadline-ms", "0",
               "per-request solve deadline in ms; expired solves degrade to "
               "the heuristic fallback (0 = no deadline)");
  flags.define("queue-budget", "0",
               "queued connections before shedding with 503 (0 = 2x workers)");
  flags.define("retry-after", "1",
               "Retry-After seconds advertised on shed/overload 503s");
  flags.define("grace", "5",
               "shutdown grace seconds for in-flight requests");
  flags.define("faults", "",
               "fault-injection spec, e.g. 'serve.recv=p0.05,"
               "engine.solve=every8' (see src/util/fault.hpp)");
  flags.define("fault-seed", "1", "fault-injection decision seed");
  flags.define("verbose", "false", "log request handling to stderr");
  try {
    if (!flags.parse(argc, argv)) {
      std::fputs(flags.usage("netrecd").c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 flags.usage("netrecd").c_str());
    return 2;
  }
  util::set_log_level(flags.get_bool("verbose") ? util::LogLevel::kInfo
                                                : util::LogLevel::kWarn);

  try {
    serve::ServerOptions options;
    options.bind_address = flags.get("bind");
    options.port = flags.get_int("port");
    options.workers = static_cast<std::size_t>(flags.get_int("workers"));
    options.cache_capacity = static_cast<std::size_t>(flags.get_int("cache"));
    options.metrics_window =
        static_cast<std::size_t>(flags.get_int("metrics-window"));
    options.engine.solve_threads =
        static_cast<std::size_t>(flags.get_int("solve-threads"));
    options.engine.deadline_ms = flags.get_double("deadline-ms");
    options.queue_budget =
        static_cast<std::size_t>(flags.get_int("queue-budget"));
    options.retry_after_seconds = flags.get_int("retry-after");
    options.shutdown_grace_seconds = flags.get_double("grace");

    // Chaos testing: arm fault sites from the environment first, then let
    // an explicit --faults spec override/extend it.
    if (util::fault::arm_from_env()) {
      std::fprintf(stderr, "netrecd: armed faults from NETREC_FAULTS\n");
    }
    if (!flags.get("faults").empty()) {
      util::fault::arm(flags.get("faults"),
                       static_cast<std::uint64_t>(
                           flags.get_int("fault-seed")));
      std::fprintf(stderr, "netrecd: armed faults: %s\n",
                   flags.get("faults").c_str());
    }

    core::RecoveryProblem problem = serve::build_preloaded_problem(flags);
    std::fprintf(stderr, "netrecd: preloaded %s\n",
                 serve::describe_preload(problem, flags).c_str());

    serve::Server server(std::move(problem), options);

    // Route SIGINT/SIGTERM through a dedicated sigwait thread: blocking the
    // signals first makes delivery race-free, and request_stop() is an
    // ordinary call there (no async-signal-safety contortions).
    static sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    server.start();
    std::fprintf(stderr, "netrecd: ready on %s:%d\n", flags.get("bind").c_str(),
                 server.port());
    std::fflush(stderr);

    std::thread signal_thread([&server] {
      int sig = 0;
      if (sigwait(&signals, &sig) == 0) {
        std::fprintf(stderr, "netrecd: caught signal %d, stopping\n", sig);
        server.request_stop();
      }
    });
    signal_thread.detach();  // blocked in sigwait at clean shutdown

    server.wait();
    server.stop();
    std::fprintf(stderr, "netrecd: stopped cleanly\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netrecd: error: %s\n", e.what());
    return 1;
  }
}
