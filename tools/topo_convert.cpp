// topo_convert: convert topologies between GML, edge-list and the .ntb
// binary format, or materialise a generator family straight to disk.
//
//   topo_convert --in zoo.gml --out zoo.ntb
//   topo_convert --in as_graph.ntb --out as_graph.el
//   topo_convert --topo rmat --nodes 1000000 --seed 7 --out rmat20.ntb
//
// Formats are inferred from file extensions: .gml, .ntb, anything else is
// treated as an edge list.  Conversions to text formats lose what the
// format cannot carry (edge lists drop names/coordinates); .ntb is
// lossless.
#include <cstdio>
#include <string>

#include "graph/edgelist.hpp"
#include "graph/gml.hpp"
#include "graph/ntb.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

namespace {

enum class Format { kGml, kNtb, kEdgeList };

Format format_of(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".gml") return Format::kGml;
  if (ext == ".ntb") return Format::kNtb;
  return Format::kEdgeList;
}

const char* format_name(Format f) {
  switch (f) {
    case Format::kGml: return "gml";
    case Format::kNtb: return "ntb";
    default: return "edge-list";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  flags.define("in", "", "input file (.gml / .ntb / edge list)");
  flags.define("topo", "",
               "generate instead of reading: bell_canada, erdos_renyi, "
               "caida, rmat, barabasi_albert");
  flags.define("nodes", "0", "node count for --topo (0 = family default)");
  flags.define("seed", "1", "seed for --topo");
  flags.define("out", "", "output file (.gml / .ntb / edge list)");
  flags.define("default-capacity", "1.0", "capacity for inputs without one");
  flags.define("default-cost", "1.0", "repair cost for inputs without one");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage("topo_convert").c_str(), stderr);
    return 2;
  }

  const std::string in = flags.get("in");
  const std::string topo = flags.get("topo");
  const std::string out = flags.get("out");
  if (out.empty() || (in.empty() == topo.empty())) {
    std::fputs("topo_convert: need --out and exactly one of --in/--topo\n",
               stderr);
    std::fputs(flags.usage("topo_convert").c_str(), stderr);
    return 2;
  }

  try {
    util::Timer timer;
    graph::Graph g;
    std::string source;
    if (!topo.empty()) {
      topology::GeneratorParams params = topology::params_for(topo);
      params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
      if (nodes > 0) {
        std::visit(
            [nodes](auto& opt) {
              using T = std::decay_t<decltype(opt)>;
              if constexpr (!std::is_same_v<T, topology::BellCanadaOptions>) {
                opt.nodes = nodes;
              }
            },
            params.options);
      }
      g = topology::make_topology(params);
      source = "generator '" + topo + "'";
    } else {
      switch (format_of(in)) {
        case Format::kGml: {
          graph::GmlOptions options;
          options.default_capacity = flags.get_double("default-capacity");
          options.default_repair_cost = flags.get_double("default-cost");
          g = graph::load_gml_file(in, options);
          break;
        }
        case Format::kNtb:
          g = graph::load_ntb_file(in);
          break;
        case Format::kEdgeList: {
          graph::EdgeListOptions options;
          options.default_capacity = flags.get_double("default-capacity");
          options.default_repair_cost = flags.get_double("default-cost");
          g = graph::load_edge_list_file(in, options);
          break;
        }
      }
      source = format_name(format_of(in)) + std::string(" '") + in + "'";
    }
    const double read_s = timer.elapsed_seconds();

    timer = util::Timer();
    switch (format_of(out)) {
      case Format::kGml:
        graph::save_gml_file(g, out);
        break;
      case Format::kNtb:
        graph::save_ntb_file(g, out);
        break;
      case Format::kEdgeList:
        graph::save_edge_list_file(g, out);
        break;
    }
    std::printf(
        "%s: %zu nodes / %zu edges from %s (%.3fs) -> %s '%s' (%.3fs)\n",
        argv[0], g.num_nodes(), g.num_edges(), source.c_str(), read_s,
        format_name(format_of(out)), out.c_str(), timer.elapsed_seconds());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "topo_convert: %s\n", e.what());
    return 1;
  }
  return 0;
}
