// Disaster response on the Bell-Canada-like backbone.
//
// A geographically-correlated disaster (bi-variate Gaussian, epicentre near
// Montreal by default) knocks out part of the network; four mission-critical
// services (government, hospital, power-grid control, emergency dispatch)
// must be restored.  Compares the repair bill of ISP against SRT, GRD-NC and
// repairing everything.
//
//   $ ./disaster_response [--variance 60] [--epicenter-x -73.57]
//                         [--epicenter-y 45.5] [--seed 7]
#include <cstdio>
#include <string>

#include "netrec.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  flags.define("variance", "60", "disaster variance (paper sweep: 10..150)");
  flags.define("epicenter-x", "-73.57", "epicentre longitude");
  flags.define("epicenter-y", "45.50", "epicentre latitude (default Montreal)");
  flags.define("seed", "7", "random seed");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage(argv[0]).c_str(), stdout);
    return 0;
  }

  core::RecoveryProblem problem;
  problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
  graph::Graph& g = problem.graph;

  // Mission-critical services, chosen far apart (paper Section VII-A).
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  problem.demands = scenario::far_apart_demands(g, 4, 10.0, rng);
  std::printf("mission-critical services:\n");
  for (const auto& d : problem.demands) {
    std::printf("  %-13s <-> %-13s  %.0f units\n",
                std::string(g.node_name(d.source)).c_str(), std::string(g.node_name(d.target)).c_str(),
                d.amount);
  }

  disruption::GaussianDisasterOptions dopt;
  dopt.variance = flags.get_double("variance");
  dopt.epicenter = {{flags.get_double("epicenter-x"),
                     flags.get_double("epicenter-y")}};
  util::Rng disaster_rng = rng.fork();
  const auto report = disruption::gaussian_disaster(g, dopt, disaster_rng);
  std::printf("\ndisaster (variance %.0f): %zu nodes and %zu links down\n",
              dopt.variance, report.broken_nodes, report.broken_edges);

  if (!problem.feasible_when_fully_repaired()) {
    std::printf("note: demand not fully routable even with all repairs; "
                "algorithms will do best effort\n");
  }

  struct Entry {
    const char* name;
    core::RecoverySolution solution;
  };
  std::vector<Entry> entries;
  entries.push_back({"ISP", core::IspSolver(problem).solve()});
  entries.push_back({"SRT", heuristics::solve_srt(problem)});
  entries.push_back({"GRD-NC", heuristics::solve_grd_nc(problem)});
  entries.push_back({"ALL", heuristics::solve_all(problem)});

  std::printf("\n%-8s %8s %8s %10s %12s\n", "policy", "repairs", "cost",
              "satisfied", "seconds");
  for (const Entry& e : entries) {
    std::printf("%-8s %8zu %8.0f %9.1f%% %12.3f\n", e.name,
                e.solution.total_repairs(), e.solution.repair_cost,
                e.solution.satisfied_fraction * 100.0,
                e.solution.wall_seconds);
  }

  const auto& isp = entries.front().solution;
  std::printf("\nISP repair crew dispatch list:\n");
  for (graph::NodeId n : isp.repaired_nodes) {
    std::printf("  site  %s\n", std::string(g.node_name(n)).c_str());
  }
  for (graph::EdgeId e : isp.repaired_edges) {
    std::printf("  link  %s - %s\n", std::string(g.node_name(g.edge_u(e))).c_str(),
                std::string(g.node_name(g.edge_v(e))).c_str());
  }
  return 0;
}
