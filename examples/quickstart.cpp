// Quickstart: build a supply network, mark a disaster, run ISP, inspect the
// repair plan and the resulting routing.
//
//   $ ./quickstart
//
// This walks the library's core loop in ~60 lines: Graph -> demands ->
// disruption -> IspSolver -> RecoverySolution.
#include <cstdio>
#include <string>

#include "netrec.hpp"

int main() {
  using namespace netrec;

  // 1. Supply graph: a ring of six sites with one cross link.
  core::RecoveryProblem problem;
  graph::Graph& g = problem.graph;
  const auto a = g.add_node("alpha", 0, 0);
  const auto b = g.add_node("bravo", 1, 1);
  const auto c = g.add_node("charlie", 2, 1);
  const auto d = g.add_node("delta", 3, 0);
  const auto e = g.add_node("echo", 2, -1);
  const auto f = g.add_node("foxtrot", 1, -1);
  g.add_edge(a, b, 10.0);
  g.add_edge(b, c, 10.0);
  g.add_edge(c, d, 10.0);
  g.add_edge(d, e, 10.0);
  g.add_edge(e, f, 10.0);
  g.add_edge(f, a, 10.0);
  g.add_edge(b, e, 5.0);  // cross link

  // 2. Mission-critical demand: alpha <-> delta needs 8 units.
  problem.demands.push_back(mcf::Demand{a, d, 8.0});

  // 3. Disaster: everything breaks.
  disruption::complete_destruction(g);
  std::printf("disaster: %zu nodes, %zu edges down\n",
              g.num_broken_nodes(), g.num_broken_edges());

  // 4. Recover with ISP.
  core::IspSolver solver(problem);
  solver.set_trace(true);
  const core::RecoverySolution plan = solver.solve();

  // 5. Inspect the plan.
  std::printf("\nISP repair plan (%zu repairs, cost %.0f):\n",
              plan.total_repairs(), plan.repair_cost);
  for (graph::NodeId n : plan.repaired_nodes) {
    std::printf("  repair node %s\n", std::string(g.node_name(n)).c_str());
  }
  for (graph::EdgeId eid : plan.repaired_edges) {
    std::printf("  repair link %s - %s\n", std::string(g.node_name(g.edge_u(eid))).c_str(),
                std::string(g.node_name(g.edge_v(eid))).c_str());
  }
  std::printf("\nrouting (%.0f%% of demand satisfied):\n",
              plan.satisfied_fraction * 100.0);
  for (const mcf::PathFlow& flow : plan.routing.flows) {
    std::printf("  %.1f units via %s\n", flow.amount,
                flow.path.to_string(g).c_str());
  }

  std::printf("\nalgorithm trace:\n");
  for (const core::IspEvent& event : solver.stats().events) {
    std::printf("  %s\n", event.to_string().c_str());
  }

  // 6. Sanity: the independent validator agrees.
  const std::string verdict = core::validate_solution(problem, plan);
  std::printf("\nvalidator: %s\n", verdict.empty() ? "OK" : verdict.c_str());
  return verdict.empty() ? 0 : 1;
}
