// Topology report: statistics of the three experiment topologies (the
// textual counterpart of the paper's Fig. 8 topology plot), plus GML export
// so the exact graphs used in a run can be archived or visualised elsewhere.
//
//   $ ./topology_report [--export-dir /tmp] [--caida-seed 77]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "netrec.hpp"
#include "util/flags.hpp"

namespace {

using namespace netrec;

void report(const char* name, const graph::Graph& g) {
  std::printf("\n%s\n", name);
  std::printf("  nodes: %zu, edges: %zu (m/n = %.2f)\n", g.num_nodes(),
              g.num_edges(),
              static_cast<double>(g.num_edges()) /
                  static_cast<double>(g.num_nodes()));
  std::printf("  hop diameter: %d\n", graph::hop_diameter(g));

  std::vector<std::size_t> degree(g.num_nodes());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    degree[i] = g.degree(static_cast<graph::NodeId>(i));
  }
  std::sort(degree.begin(), degree.end());
  std::printf("  degree min/median/max: %zu / %zu / %zu\n", degree.front(),
              degree[degree.size() / 2], degree.back());

  double total_capacity = 0.0;
  double min_cap = 1e18;
  double max_cap = 0.0;
  for (double cap : g.edge_capacities()) {
    total_capacity += cap;
    min_cap = std::min(min_cap, cap);
    max_cap = std::max(max_cap, cap);
  }
  std::printf("  capacity min/mean/max: %.0f / %.1f / %.0f\n", min_cap,
              total_capacity / static_cast<double>(g.num_edges()), max_cap);

  const auto labels = graph::connected_components(g);
  int components = 0;
  for (int l : labels) components = std::max(components, l + 1);
  std::printf("  connected components: %d\n", components);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("export-dir", "", "write each topology as GML to this dir");
  flags.define("caida-seed", "77", "seed of the CAIDA-like generator");
  flags.define("er-p", "0.5", "Erdos-Renyi edge probability");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage(argv[0]).c_str(), stdout);
    return 0;
  }

  const graph::Graph bell = topology::make_topology({topology::BellCanadaOptions{}});
  report("Bell-Canada-like (Section VII-A)", bell);

  util::Rng er_rng(5);
  topology::ErdosRenyiOptions eopt;
  eopt.edge_probability = flags.get_double("er-p");
  const graph::Graph er = topology::make_topology(eopt, er_rng);
  report("Erdos-Renyi n=100 (Section VII-B)", er);

  util::Rng caida_rng(
      static_cast<std::uint64_t>(flags.get_int("caida-seed")));
  const graph::Graph caida = topology::make_topology(topology::CaidaLikeOptions{}, caida_rng);
  report("CAIDA-like AS topology (Section VII-C)", caida);

  const std::string dir = flags.get("export-dir");
  if (!dir.empty()) {
    graph::save_gml_file(bell, dir + "/bell_canada_like.gml");
    graph::save_gml_file(er, dir + "/erdos_renyi.gml");
    graph::save_gml_file(caida, dir + "/caida_like.gml");
    std::printf("\nGML files written to %s\n", dir.c_str());
  }
  return 0;
}
