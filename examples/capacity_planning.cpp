// Capacity planning with the MinR machinery (paper Section III, footnote 1):
// the same model that chooses repairs can choose *new* links to deploy —
// candidate links enter the supply graph as "broken" elements whose repair
// cost is the installation cost.
//
// Scenario: the Bell-Canada-like backbone is intact, but planners must
// provision for a demand surge between the Prairies and the Atlantic that
// the current network cannot carry.  Candidate express links are priced;
// OPT (and ISP, for comparison) pick which to build.
//
//   $ ./capacity_planning [--surge 60]
#include <cstdio>
#include <string>

#include "netrec.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  flags.define("surge", "100", "units of surge demand Winnipeg <-> Halifax");
  flags.define("opt-seconds", "10", "MILP budget");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage(argv[0]).c_str(), stdout);
    return 0;
  }

  core::RecoveryProblem problem;
  problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
  graph::Graph& g = problem.graph;

  auto find = [&](const char* name) {
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
      if (g.node_name(static_cast<graph::NodeId>(i)) == name) {
        return static_cast<graph::NodeId>(i);
      }
    }
    return graph::kInvalidNode;
  };
  const auto winnipeg = find("Winnipeg");
  const auto halifax = find("Halifax");
  const auto toronto = find("Toronto");
  const auto montreal = find("Montreal");
  const auto quebec = find("QuebecCity");
  const auto thunderbay = find("ThunderBay");

  // Candidate express links: broken=true means "not built yet"; the repair
  // cost is the build cost.  MinR decides which subset to erect.
  struct Candidate {
    graph::NodeId u, v;
    double capacity, build_cost;
  };
  const Candidate candidates[] = {
      {winnipeg, toronto, 40.0, 6.0},   // long-haul express
      {thunderbay, montreal, 40.0, 7.0},
      {toronto, quebec, 40.0, 4.0},
      {montreal, halifax, 40.0, 5.0},
      {quebec, halifax, 40.0, 3.0},
  };
  std::printf("candidate builds:\n");
  for (const Candidate& c : candidates) {
    const graph::EdgeId e = g.add_edge(c.u, c.v, c.capacity, c.build_cost);
    g.set_edge_broken(e, true);  // must be "repaired" (= built) to be used
    std::printf("  %-12s - %-12s cap %.0f, cost %.0f\n",
                std::string(g.node_name(c.u)).c_str(),
                std::string(g.node_name(c.v)).c_str(),
                c.capacity, c.build_cost);
  }

  const double surge = flags.get_double("surge");
  problem.demands.push_back(mcf::Demand{winnipeg, halifax, surge});
  std::printf("\nsurge demand: Winnipeg <-> Halifax, %.0f units\n", surge);

  const auto cap = mcf::static_capacity(g);
  const auto working = graph::working_edge_filter(g);
  const auto baseline =
      mcf::max_routed_flow(g, problem.demands, working, cap);
  std::printf("existing network carries %.0f / %.0f units\n",
              baseline.total_routed, surge);
  if (baseline.fully_routed) {
    std::printf("no build needed.\n");
    return 0;
  }

  heuristics::OptOptions oo;
  oo.time_limit_seconds = flags.get_double("opt-seconds");
  const auto opt = heuristics::solve_opt(problem, oo);
  std::printf("\nbuild plan (%s, %s): cost %.0f\n", opt.engine,
              opt.proven_optimal ? "proven optimal" : "best found",
              opt.solution.repair_cost);
  for (graph::EdgeId e : opt.solution.repaired_edges) {
    std::printf("  build %-12s - %-12s\n", std::string(g.node_name(g.edge_u(e))).c_str(),
                std::string(g.node_name(g.edge_v(e))).c_str());
  }
  std::printf("surge carried after build: %.1f%%\n",
              opt.solution.satisfied_fraction * 100.0);

  const auto isp = core::IspSolver(problem).solve();
  std::printf("\n(for comparison, ISP would build at cost %.0f "
              "with %.1f%% carried)\n",
              isp.repair_cost, isp.satisfied_fraction * 100.0);
  return 0;
}
