// Progressive recovery: turning ISP's repair *set* into a repair *schedule*.
//
// ISP decides what to repair; field crews need an order.  The
// heuristics::schedule_repairs module orders the set so restored demand
// front-loads (the objective of Wang, Qiao & Yu, INFOCOM 2011 — the paper's
// ref. [32]), and this example prints the resulting restoration curve,
// comparing it against executing the same repairs in plain list order.
//
//   $ ./progressive_recovery [--pairs 4] [--flow 10] [--seed 11]
#include <cstdio>

#include "netrec.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  flags.define("pairs", "4", "number of critical demand pairs");
  flags.define("flow", "10", "flow units per pair");
  flags.define("seed", "11", "random seed");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage(argv[0]).c_str(), stdout);
    return 0;
  }

  core::RecoveryProblem problem;
  problem.graph = topology::bell_canada_like();
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  problem.demands = scenario::far_apart_demands(
      problem.graph, static_cast<std::size_t>(flags.get_int("pairs")),
      flags.get_double("flow"), rng);
  disruption::complete_destruction(problem.graph);

  const core::RecoverySolution plan = core::IspSolver(problem).solve();
  std::printf("ISP plan: %zu repairs for %.0f units of critical demand\n\n",
              plan.total_repairs(), problem.total_demand());

  heuristics::ScheduleOptions sopt;
  sopt.exact_scoring = true;
  const auto schedule = heuristics::schedule_repairs(problem, plan, sopt);

  std::printf("%-6s %-34s %10s\n", "step", "intervention", "restored");
  double prev = 0.0;
  for (std::size_t i = 0; i < schedule.steps.size(); ++i) {
    const auto& step = schedule.steps[i];
    const double pct = 100.0 * step.restored_after / problem.total_demand();
    std::printf("%-6zu %-34s %9.1f%%%s\n", i + 1, step.label.c_str(), pct,
                step.restored_after > prev + 1e-9 ? "  <-- service gain" : "");
    prev = step.restored_after;
  }

  std::printf("\nschedule quality:\n");
  std::printf("  restoration AUC           %.3f (1.0 = instant)\n",
              schedule.restoration_auc());
  std::printf("  steps to 50%% restored     %zu\n",
              schedule.steps_to_restore(0.5));
  std::printf("  steps to 100%% restored    %zu of %zu\n",
              schedule.steps_to_restore(1.0), schedule.steps.size());

  // Baseline: same repairs, plain list order (nodes then edges).
  {
    core::RepairState state(problem.graph);
    const auto cap = mcf::static_capacity(problem.graph);
    double area = 0.0;
    std::size_t steps = 0;
    auto apply = [&](bool is_node, int id) {
      if (is_node) {
        state.repair_node(static_cast<graph::NodeId>(id));
      } else {
        state.repair_edge(static_cast<graph::EdgeId>(id));
      }
      const auto routed = mcf::max_routed_flow(
          problem.graph, problem.demands, state.edge_filter(), cap);
      area += routed.total_routed / problem.total_demand();
      ++steps;
    };
    for (graph::NodeId n : plan.repaired_nodes) apply(true, n);
    for (graph::EdgeId e : plan.repaired_edges) apply(false, e);
    std::printf("  list-order AUC (baseline) %.3f\n",
                steps ? area / static_cast<double>(steps) : 1.0);
  }
  return 0;
}
