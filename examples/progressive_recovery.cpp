// Progressive recovery: turning ISP's repair *set* into a repair *schedule*.
//
// ISP decides what to repair; field crews need an order.  The
// heuristics::schedule_repairs module orders the set so restored demand
// front-loads (the objective of Wang, Qiao & Yu, INFOCOM 2011 — the paper's
// ref. [32]).  This example runs that schedule through recovery::Timeline in
// its degenerate one-shot configuration — a single stage with unlimited
// crew budget and static dynamics, which the differential suite pins
// bit-identical to executing the schedule by hand — and prints the
// resulting restoration curve, comparing it against executing the same
// repairs in plain list order.
//
//   $ ./progressive_recovery [--pairs 4] [--flow 10] [--seed 11]
#include <cstdio>

#include "netrec.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace netrec;

  util::Flags flags;
  flags.define("pairs", "4", "number of critical demand pairs");
  flags.define("flow", "10", "flow units per pair");
  flags.define("seed", "11", "random seed");
  if (!flags.parse(argc, argv)) {
    std::fputs(flags.usage(argv[0]).c_str(), stdout);
    return 0;
  }

  core::RecoveryProblem problem;
  problem.graph = topology::make_topology({topology::BellCanadaOptions{}});
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  problem.demands = scenario::far_apart_demands(
      problem.graph, static_cast<std::size_t>(flags.get_int("pairs")),
      flags.get_double("flow"), rng);
  disruption::complete_destruction(problem.graph);

  // One-shot configuration: everything in stage 0, nothing evolves.
  recovery::TimelineOptions topt;
  topt.stage_budget = 0;  // unlimited
  recovery::StaticDynamics statics;
  util::Rng timeline_rng(0);  // static runs consume no randomness

  recovery::ReplayOptions ropt;
  ropt.schedule.exact_scoring = true;
  recovery::ReplayPolicy policy(ropt);
  const auto result =
      recovery::Timeline(problem, policy, statics, topt).run(timeline_rng);
  const auto restored = result.step_series();
  std::vector<recovery::RepairAction> steps;
  for (const auto& rec : result.stages) {
    steps.insert(steps.end(), rec.repairs.begin(), rec.repairs.end());
  }

  std::printf("ISP plan: %zu repairs for %.0f units of critical demand\n\n",
              policy.plan().total_repairs(), problem.total_demand());

  std::printf("%-6s %-34s %10s\n", "step", "intervention", "restored");
  double prev = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double pct = 100.0 * restored[i] / problem.total_demand();
    std::printf("%-6zu %-34s %9.1f%%%s\n", i + 1, steps[i].label.c_str(), pct,
                restored[i] > prev + 1e-9 ? "  <-- service gain" : "");
    prev = restored[i];
  }

  std::printf("\nschedule quality:\n");
  std::printf("  restoration AUC           %.3f (1.0 = instant)\n",
              util::restoration_auc(restored, result.total_demand));
  std::printf("  steps to 50%% restored     %zu\n",
              util::steps_to_fraction(restored, result.total_demand, 0.5));
  std::printf("  steps to 100%% restored    %zu of %zu\n",
              util::steps_to_fraction(restored, result.total_demand, 1.0),
              restored.size());

  // Baseline: same repairs, plain list order (nodes then edges).
  {
    recovery::ReplayOptions lopt;
    lopt.schedule_order = false;
    recovery::ReplayPolicy list_policy(lopt);
    const auto baseline =
        recovery::Timeline(problem, list_policy, statics, topt)
            .run(timeline_rng);
    std::printf("  list-order AUC (baseline) %.3f\n",
                util::restoration_auc(baseline.step_series(),
                                      baseline.total_demand));
  }
  return 0;
}
